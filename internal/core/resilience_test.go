package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"akb/internal/kb"
	"akb/internal/resilience"
	"akb/internal/webgen"
)

// chaosConfig is a scaled-down pipeline configuration for fault tests.
func chaosConfig() Config {
	cfg := DefaultConfig()
	cfg.World = kb.WorldConfig{Seed: 1, EntitiesPerClass: 12, AttrsPerEntity: 10}
	cfg.Stream.TotalRecords = 4000
	cfg.Sites.SitesPerClass = 2
	cfg.Sites.PagesPerSite = 6
	cfg.Corpus.DocsPerClass = 6
	// Retries never sleep in tests.
	cfg.Retry = resilience.RetryPolicy{MaxAttempts: 3}
	return cfg
}

// allOptionalFaults fails every optional stage at the given probability.
func allOptionalFaults(seed int64, prob float64, transient bool) *resilience.FaultPlan {
	plan := &resilience.FaultPlan{Seed: seed, Stages: map[string]resilience.StageFault{}}
	for _, st := range OptionalStageNames() {
		plan.Stages[st] = resilience.StageFault{FailProb: prob, Transient: transient}
	}
	return plan
}

// TestChaosAllOptionalStagesDegrade is the acceptance scenario: every
// optional stage fails permanently at 100% probability, yet the pipeline
// completes on the mandatory spine (substrates → kbx → fusion → augment)
// and reports each optional stage as degraded.
func TestChaosAllOptionalStagesDegrade(t *testing.T) {
	cfg := chaosConfig()
	cfg.ListPages = true
	cfg.Temporal = true
	cfg.DiscoverEntities = true
	cfg.Align = true
	cfg.Faults = allOptionalFaults(99, 1, false)

	res, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatalf("pipeline failed hard: %v", err)
	}
	deg := res.Health().Degraded()
	want := OptionalStageNames()
	if len(deg) != len(want) {
		t.Fatalf("degraded = %v, want all of %v", deg, want)
	}
	for _, st := range want {
		sh, ok := res.Health().Stage(st)
		if !ok || sh.Health != resilience.Degraded {
			t.Errorf("stage %s not reported degraded: %+v", st, sh)
		}
		if !strings.Contains(sh.Err, "injected fault") {
			t.Errorf("stage %s error %q does not name the injected fault", st, sh.Err)
		}
	}
	for _, st := range MandatoryStageNames() {
		if st == StageFusion || st == StageAugment {
			continue // reported under fusion/FULL and augment stats below
		}
		sh, ok := res.Health().Stage(st)
		if !ok || sh.Health != resilience.OK {
			t.Errorf("mandatory stage %s not healthy: %+v", st, sh)
		}
	}
	// The degraded extractors contributed nothing...
	if res.QSX != nil || res.DOMX != nil || res.TextX != nil || res.Lists != nil || res.Discovered != nil {
		t.Error("degraded stages still left outputs in the result")
	}
	// ...but fusion ran on the surviving KB statements.
	if res.Fused() == nil || len(res.Fused().Decisions) == 0 {
		t.Fatal("fusion produced no decisions from surviving stages")
	}
	if p := res.FusionMetrics.Precision(); p < 0.85 {
		t.Errorf("fusion precision from surviving stages = %.3f, want >= 0.85", p)
	}
	if res.Augmented == nil || res.Augmented.Len() == 0 {
		t.Error("augmented KB empty")
	}
	// Degraded stages appear in the stage stats with health annotations.
	found := 0
	for _, st := range res.Stats() {
		if st.Health == resilience.Degraded {
			found++
			if st.Precision != -1 || st.Err == "" {
				t.Errorf("degraded stat malformed: %+v", st)
			}
		}
	}
	if found != len(want) {
		t.Errorf("%d degraded stage stats, want %d", found, len(want))
	}
	// Growth still renders from the surviving stages.
	if g := res.Growth(); len(g) == 0 {
		t.Error("Growth() empty on degraded run")
	}
}

func TestChaosSingleStageDegrades(t *testing.T) {
	cfg := chaosConfig()
	cfg.Faults = &resilience.FaultPlan{Seed: 3, Stages: map[string]resilience.StageFault{
		StageTextX: {FailProb: 1},
	}}
	res, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if deg := res.Health().Degraded(); len(deg) != 1 || deg[0] != StageTextX {
		t.Fatalf("degraded = %v, want [%s]", deg, StageTextX)
	}
	if res.TextX != nil {
		t.Error("TextX output present despite degradation")
	}
	if res.DOMX == nil || res.QSX == nil {
		t.Error("healthy stages missing outputs")
	}
	if p := res.FusionMetrics.Precision(); p < 0.7 {
		t.Errorf("precision without textx = %.3f", p)
	}
	if res.Health().Healthy() {
		t.Error("Healthy() true on degraded run")
	}
}

func TestChaosTransientFaultsRecoverViaRetry(t *testing.T) {
	cfg := chaosConfig()
	cfg.Retry = resilience.RetryPolicy{MaxAttempts: 8}
	cfg.Faults = &resilience.FaultPlan{Seed: 11, Default: resilience.StageFault{FailProb: 0.5, Transient: true}}
	res, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatalf("transient chaos at p=0.5 with 8 attempts failed hard: %v", err)
	}
	if !res.Health().Healthy() {
		t.Fatalf("stages did not recover: %v", res.Health())
	}
	retried := false
	for _, sh := range res.Health().Stages {
		if sh.Attempts > 1 {
			retried = true
		}
	}
	if !retried {
		t.Error("no stage needed a retry at p=0.5; fault injection inactive?")
	}
	// Attempts surface on the stage stats too.
	for _, st := range res.Stats() {
		if st.Attempts < 1 {
			t.Errorf("stage %s has no attempt count", st.Stage)
		}
	}
}

func TestChaosDeterministic(t *testing.T) {
	run := func() (*Result, error) {
		cfg := chaosConfig()
		cfg.Retry = resilience.RetryPolicy{MaxAttempts: 2}
		cfg.Faults = &resilience.FaultPlan{Seed: 21, Default: resilience.StageFault{FailProb: 0.4, Transient: true}}
		return RunContext(context.Background(), cfg)
	}
	a, errA := run()
	b, errB := run()
	if (errA == nil) != (errB == nil) {
		t.Fatalf("outcome differs: %v vs %v", errA, errB)
	}
	if errA != nil {
		return
	}
	da, db := a.Health().Degraded(), b.Health().Degraded()
	if len(da) != len(db) {
		t.Fatalf("degraded sets differ: %v vs %v", da, db)
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("degraded sets differ: %v vs %v", da, db)
		}
	}
	if a.FusionMetrics != b.FusionMetrics {
		t.Fatalf("metrics differ under identical fault seeds: %+v vs %+v", a.FusionMetrics, b.FusionMetrics)
	}
}

func TestMandatoryStageFaultFailsHard(t *testing.T) {
	cfg := chaosConfig()
	cfg.Faults = &resilience.FaultPlan{Seed: 1, Stages: map[string]resilience.StageFault{
		StageFusion: {FailProb: 1},
	}}
	res, err := RunContext(context.Background(), cfg)
	if err == nil {
		t.Fatal("mandatory-stage fault did not fail the run")
	}
	if res != nil {
		t.Error("result returned alongside hard failure")
	}
	var se *resilience.StageError
	if !errors.As(err, &se) || se.Stage != StageFusion {
		t.Fatalf("error %v is not a StageError for %s", err, StageFusion)
	}
	if !errors.Is(err, resilience.ErrInjected) {
		t.Errorf("error %v does not wrap ErrInjected", err)
	}
}

func TestRunContextCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunContext(ctx, chaosConfig())
	if res != nil || err == nil {
		t.Fatalf("res=%v err=%v", res, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
}

func TestRunContextCancelMidPipeline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen []string
	cfg := chaosConfig()
	cfg.StageHook = func(stage string) {
		seen = append(seen, stage)
		if stage == StageDOMX {
			cancel()
		}
	}
	res, err := RunContext(ctx, cfg)
	if res != nil || err == nil {
		t.Fatalf("res=%v err=%v", res, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not wrap context.Canceled", err)
	}
	var se *resilience.StageError
	if !errors.As(err, &se) || se.Stage != StageDOMX {
		t.Fatalf("error %v not attributed to %s", err, StageDOMX)
	}
	if seen[len(seen)-1] != StageDOMX {
		t.Errorf("pipeline kept starting stages after cancellation: %v", seen)
	}
	for _, st := range seen[:len(seen)-1] {
		if st == StageTextX || st == "fusion" {
			t.Errorf("downstream stage %s started before cancellation point", st)
		}
	}
}

func TestQSXStageStatReportsCredibleAttrs(t *testing.T) {
	res, err := RunContext(context.Background(), chaosConfig())
	if err != nil {
		t.Fatal(err)
	}
	var stat *StageStat
	for i := range res.Stats() {
		if res.Stats()[i].Stage == StageQSX {
			stat = &res.Stats()[i]
		}
	}
	if stat == nil {
		t.Fatal("no extract/qsx stage stat")
	}
	if stat.Statements <= 0 {
		t.Errorf("qsx stat reports %d credible attrs, want > 0", stat.Statements)
	}
	if stat.Precision < 0 {
		t.Errorf("qsx precision = %.3f, want a real value", stat.Precision)
	}
	if !strings.Contains(stat.Detail, "credible attrs") {
		t.Errorf("qsx detail %q lacks credible-attribute count", stat.Detail)
	}
}

func TestSplitHostsByClassSkipsUnknownHosts(t *testing.T) {
	classOf := func(host string) string {
		if strings.HasPrefix(host, "film") {
			return "Film"
		}
		return ""
	}
	lists := map[string][]*webgen.ListPage{
		"film-0.example.com":    {{URL: "a"}},
		"mystery-1.example.com": {{URL: "b"}},
		"enigma-2.example.com":  {{URL: "c"}},
	}
	known, unknown := splitHostsByClass(lists, classOf)
	if len(known) != 1 || known["film-0.example.com"] == nil {
		t.Errorf("known = %v", known)
	}
	if len(unknown) != 2 || unknown[0] != "enigma-2.example.com" || unknown[1] != "mystery-1.example.com" {
		t.Errorf("unknown = %v", unknown)
	}
}

func TestRunMatchesRunContextFaultFree(t *testing.T) {
	cfg := chaosConfig()
	a := Run(cfg)
	b, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Statements) != len(b.Statements) || a.FusionMetrics != b.FusionMetrics {
		t.Fatalf("Run and RunContext diverge: %d/%d stmts, %+v vs %+v",
			len(a.Statements), len(b.Statements), a.FusionMetrics, b.FusionMetrics)
	}
	if !a.Health().Healthy() || !b.Health().Healthy() {
		t.Error("fault-free runs not healthy")
	}
}
