package core

import (
	"context"
	"strconv"
	"testing"

	"akb/internal/obs"
	"akb/internal/resilience"
)

// TestRunContextTelemetry runs the supervised pipeline with telemetry
// attached and checks the tracing contract end to end: every supervised
// stage in the health report produced exactly one root span, root spans
// start in execution order, and every span carries a real duration.
func TestRunContextTelemetry(t *testing.T) {
	run := obs.NewRun()
	ctx := obs.Into(context.Background(), run)
	res, err := RunContext(ctx, chaosConfig())
	if err != nil {
		t.Fatalf("pipeline failed: %v", err)
	}
	rr, err := run.Report(res.Health())
	if err != nil {
		t.Fatal(err)
	}

	roots := rr.RootSpans()
	if len(roots) != len(res.Health().Stages) {
		t.Fatalf("got %d root spans for %d supervised stages", len(roots), len(res.Health().Stages))
	}
	perStage := make(map[string]int)
	for _, s := range roots {
		perStage[s.Name]++
	}
	for i, sh := range res.Health().Stages {
		if perStage[sh.Stage] != 1 {
			t.Errorf("stage %s has %d root spans, want exactly 1", sh.Stage, perStage[sh.Stage])
		}
		// Root spans appear in execution order, matching the health report.
		if roots[i].Name != sh.Stage {
			t.Errorf("root span %d is %s, want %s", i, roots[i].Name, sh.Stage)
		}
		// The span mirrors the supervisor's verdict.
		if got := roots[i].Attr("health"); got != sh.Health.String() {
			t.Errorf("stage %s span health = %q, want %q", sh.Stage, got, sh.Health)
		}
		if got := roots[i].Attr("attempts"); got != strconv.Itoa(sh.Attempts) {
			t.Errorf("stage %s span attempts = %q, want %d", sh.Stage, got, sh.Attempts)
		}
	}
	for i, s := range rr.Spans {
		if s.DurationNS <= 0 {
			t.Errorf("span %s has non-positive duration", s.Name)
		}
		if i > 0 && s.Start.Before(rr.Spans[i-1].Start) {
			t.Errorf("span %s starts before its predecessor %s", s.Name, rr.Spans[i-1].Name)
		}
	}

	// Each stage ran exactly once, as one child attempt span.
	for _, root := range roots {
		kids := rr.Children(root.ID)
		if len(kids) != 1 || kids[0].Name != root.Name+"/attempt" {
			t.Errorf("stage %s children = %+v, want one attempt span", root.Name, kids)
		}
	}

	// The domain counters flowed through the layers into the registry.
	for _, name := range []string{
		"akb_kbx_statements_total",
		"akb_pipeline_statements_total",
		"akb_fusion_claims_total",
		"akb_fusion_truths_total",
		"akb_resilience_stage_attempts_total",
		"akb_mapreduce_map_tasks_total",
	} {
		m, ok := rr.Metric(name)
		if !ok || m.Value <= 0 {
			t.Errorf("metric %s missing or zero: %+v ok=%v", name, m, ok)
		}
	}
	if m, ok := rr.Metric("akb_resilience_stage_seconds"); !ok || m.Count != int64(len(roots)) {
		t.Errorf("stage seconds histogram = %+v ok=%v, want count %d", m, ok, len(roots))
	}
}

// TestRunContextTelemetryRetries injects a transient fault into one
// optional stage and checks the trace records the recovery: multiple
// attempt children under a single healthy root span, plus retry and fault
// counters.
func TestRunContextTelemetryRetries(t *testing.T) {
	cfg := chaosConfig()
	// Seed 5 at 0.6 deterministically fails attempts 1 and 2 and lets
	// attempt 3 through: the stage recovers inside its 3-attempt budget.
	cfg.Faults = &resilience.FaultPlan{Seed: 5, Stages: map[string]resilience.StageFault{
		StageTextX: {FailProb: 0.6, Transient: true},
	}}
	run := obs.NewRun()
	res, err := RunContext(obs.Into(context.Background(), run), cfg)
	if err != nil {
		t.Fatalf("pipeline failed: %v", err)
	}
	sh, ok := res.Health().Stage(StageTextX)
	if !ok || sh.Health != resilience.OK || sh.Attempts < 2 {
		t.Fatalf("textx did not recover via retry: %+v", sh)
	}
	rr, err := run.Report(res.Health())
	if err != nil {
		t.Fatal(err)
	}
	var root obs.SpanReport
	for _, s := range rr.RootSpans() {
		if s.Name == StageTextX {
			root = s
		}
	}
	kids := rr.Children(root.ID)
	if len(kids) != sh.Attempts {
		t.Fatalf("got %d attempt spans, want %d", len(kids), sh.Attempts)
	}
	// Failed attempts carry the injected error; the last one is clean.
	for i, k := range kids {
		if k.Attr("attempt") != strconv.Itoa(i+1) {
			t.Errorf("attempt span %d annotated %q", i, k.Attr("attempt"))
		}
		if last := i == len(kids)-1; last == (k.Error != "") {
			t.Errorf("attempt %d error = %q (last=%v)", i+1, k.Error, last)
		}
	}
	if m, ok := rr.Metric("akb_resilience_retries_total"); !ok || m.Value != float64(sh.Attempts-1) {
		t.Errorf("retries counter = %+v ok=%v, want %d", m, ok, sh.Attempts-1)
	}
	if m, ok := rr.Metric("akb_resilience_faults_injected_total"); !ok || m.Value <= 0 {
		t.Errorf("faults counter = %+v ok=%v", m, ok)
	}
}

// TestRunContextWithoutTelemetry pins the no-op path: a bare context runs
// the pipeline with telemetry fully disabled and identical results.
func TestRunContextWithoutTelemetry(t *testing.T) {
	cfg := chaosConfig()
	plain, err := RunContext(context.Background(), cfg)
	if err != nil {
		t.Fatalf("plain run failed: %v", err)
	}
	run := obs.NewRun()
	traced, err := RunContext(obs.Into(context.Background(), run), cfg)
	if err != nil {
		t.Fatalf("traced run failed: %v", err)
	}
	if len(plain.Statements) != len(traced.Statements) || plain.Augmented.Len() != traced.Augmented.Len() {
		t.Fatalf("telemetry changed pipeline output: %d/%d statements, %d/%d triples",
			len(plain.Statements), len(traced.Statements), plain.Augmented.Len(), traced.Augmented.Len())
	}
}
