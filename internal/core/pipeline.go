// Package core implements the paper's Figure-1 framework end to end: the
// knowledge-extraction phase (query stream + existing KBs seed the DOM-tree
// and Web-text extractors; all four emit confidence-scored RDF statements)
// followed by the knowledge-fusion phase (conflict resolution with
// hierarchical value spaces, source/extractor correlations and confidence
// weighting), finishing with KB augmentation — attaching the fused triples
// to the Freebase stand-in.
//
// The pipeline runs as named stages under an internal/resilience
// supervisor: optional stages (query-stream, DOM, list, text, temporal
// extraction, entity discovery, alignment) fail soft and leave the run
// degraded but complete, while mandatory stages (the substrate
// generators, KB extraction, fusion, augmentation) fail hard with a
// wrapped *StageError. Run is the legacy fault-free entry point;
// RunContext adds cancellation, per-stage deadlines, retries and
// deterministic fault injection.
//
// Stages execute on the internal/sched dependency-DAG scheduler. The
// dependency structure is a shallow DAG — the five substrate generators
// are mutually independent after the world exists, KB and query-stream
// extraction are independent, and the seeded extractors only join again
// at the statement union — so Config.Parallelism > 1 runs independent
// stages concurrently. Stage stats, health entries and every Result
// field are assembled in the fixed topological order, making output
// byte-identical at any parallelism.
package core

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"akb/internal/align"
	"akb/internal/claimstream"
	"akb/internal/confidence"
	"akb/internal/entitydisc"
	"akb/internal/eval"
	"akb/internal/extract"
	"akb/internal/extract/domx"
	"akb/internal/extract/kbx"
	"akb/internal/extract/qsx"
	"akb/internal/extract/textx"
	"akb/internal/fusion"
	"akb/internal/kb"
	"akb/internal/obs"
	"akb/internal/querystream"
	"akb/internal/rdf"
	"akb/internal/resilience"
	"akb/internal/sched"
	"akb/internal/temporalx"
	"akb/internal/webgen"
)

// Supervised stage names, usable as resilience.FaultPlan keys. The
// monolithic "substrates" stage is split into the world generator plus
// five mutually independent substrate generators so they can run
// concurrently.
const (
	StageWorld    = "substrates/world"
	StageDBpedia  = "substrates/dbpedia"
	StageFreebase = "substrates/freebase"
	StageStream   = "substrates/stream"
	StageSites    = "substrates/sites"
	StageCorpus   = "substrates/corpus"
	StageSeeds    = "seeds"
	StageUnion    = "union"
	StageKBX      = "extract/kbx"
	StageQSX      = "extract/qsx"
	StageDOMX     = "extract/domx"
	StageLists    = "extract/lists"
	StageTextX    = "extract/textx"
	StageTemporal = "extract/temporal"
	StageDiscover = "discover"
	StageAlign    = "align"
	StageFusion   = "fusion"
	StageAugment  = "augment"
)

// MandatoryStageNames lists the stages that fail the whole run: without
// substrates, KB statements, fusion or augmentation there is no result.
func MandatoryStageNames() []string {
	return []string{
		StageWorld, StageDBpedia, StageFreebase, StageStream, StageSites, StageCorpus,
		StageKBX, StageSeeds, StageUnion, StageFusion, StageAugment,
	}
}

// OptionalStageNames lists the stages that fail soft: the pipeline
// degrades gracefully and fuses whatever the surviving extractors
// produced. Includes stages that only run under their config switches.
func OptionalStageNames() []string {
	return []string{StageQSX, StageDOMX, StageLists, StageTextX, StageTemporal, StageDiscover, StageAlign}
}

// Config parameterises a full pipeline run. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// Seed drives every stochastic component.
	Seed int64
	// World configures the ground-truth world.
	World kb.WorldConfig
	// DBpedia and Freebase configure the source KBs.
	DBpedia  kb.KBGenConfig
	Freebase kb.KBGenConfig
	// Stream configures query-stream generation; TotalRecords 0 keeps the
	// stream proportional to the world instead of the full Table-3 scale.
	Stream querystream.GenConfig
	// Sites and Corpus configure the synthetic Web.
	Sites  webgen.SiteConfig
	Corpus webgen.TextConfig
	// QSX, DOM and Text configure the extractors.
	QSX  qsx.Config
	DOM  domx.Config
	Text textx.Config
	// Granularity selects the fusion source granularity.
	Granularity fusion.Granularity
	// Method is the fusion method; nil uses the paper's FULL composition.
	Method fusion.Method
	// Align enables the pre-fusion normalisation step (synonym merging,
	// misspelling correction, sub-attribute identification).
	Align bool
	// AlignCfg tunes alignment; the zero value uses align.DefaultConfig().
	AlignCfg align.Config
	// DiscoverEntities enables the joint entity-linking-and-discovery
	// extension: the DOM and text extractors harvest facts about entities
	// the KBs do not cover, entitydisc clusters and links them, and the
	// created entities' statements join the fusion input.
	DiscoverEntities bool
	// DiscoverCfg tunes entity discovery; zero uses defaults.
	DiscoverCfg entitydisc.Config
	// ListPages enables multi-record list-page generation and extraction
	// (the record-mining setting of Liu et al. / Bing et al.).
	ListPages bool
	// ListCfg tunes list pages; zero uses webgen.DefaultListConfig().
	ListCfg webgen.ListConfig
	// Temporal enables temporal knowledge extraction: the corpus renders
	// time-scoped sentences about temporal attributes and temporalx fuses
	// the extracted spans into timelines.
	Temporal bool

	// Parallelism bounds how many pipeline stages execute concurrently on
	// the dependency-DAG scheduler; <= 1 runs the stages strictly serially
	// in the legacy order. When > 1 it also fans into the DOM and text
	// extractors' internal worker pools (DOM.Workers / Text.Workers) unless
	// those are set explicitly. Results are byte-identical at any value.
	Parallelism int

	// Faults optionally injects deterministic failures and latency through
	// the resilience harness; nil runs fault-free. Keys are the Stage*
	// constants.
	Faults *resilience.FaultPlan
	// Retry overrides the backoff policy for retryable stages; the zero
	// value uses resilience.DefaultRetry().
	Retry resilience.RetryPolicy
	// StageTimeout bounds each supervised stage attempt; 0 disables
	// per-stage deadlines.
	StageTimeout time.Duration
	// StageHook, when set, observes every supervised stage start. Used for
	// logging and by tests to cancel mid-pipeline. With Parallelism > 1
	// hooks fire from concurrent stage goroutines and must be safe for
	// concurrent use.
	StageHook func(stage string)
}

// DefaultConfig returns a moderate-scale configuration that runs in a few
// seconds.
func DefaultConfig() Config {
	return Config{
		Seed:     1,
		World:    kb.WorldConfig{Seed: 1, EntitiesPerClass: 40, AttrsPerEntity: 18},
		DBpedia:  kb.KBGenConfig{Seed: 2, Coverage: 0.6, ErrorRate: 0.02},
		Freebase: kb.KBGenConfig{Seed: 3, Coverage: 0.8, ErrorRate: 0.02},
		Stream: querystream.GenConfig{
			Seed: 4, TotalRecords: 30000, Threshold: 5,
			Plans: []querystream.ClassPlan{
				{Class: "Book", Relevant: 800, Credible: 20, NoncrediblePool: 15},
				{Class: "Film", Relevant: 1200, Credible: 15, NoncrediblePool: 20},
				{Class: "Country", Relevant: 1100, Credible: 30, NoncrediblePool: 25},
				{Class: "University", Relevant: 120, Credible: 8, NoncrediblePool: 10},
				{Class: "Hotel", Relevant: 60, Credible: 0, NoncrediblePool: 25},
			},
		},
		Sites: webgen.SiteConfig{
			Seed: 5, SitesPerClass: 4, PagesPerSite: 14, AttrsPerPage: 10,
			ValueErrorRate: 0.12, NoiseNodes: 5, JitterProb: 0.25, GeneralizeProb: 0.25,
		},
		Corpus: webgen.TextConfig{
			Seed: 6, DocsPerClass: 12, FactsPerDoc: 12,
			ValueErrorRate: 0.15, DistractorShare: 0.7, GeneralizeProb: 0.25,
		},
		QSX:         qsx.DefaultConfig(),
		DOM:         domx.DefaultConfig(),
		Text:        textx.DefaultConfig(),
		Granularity: fusion.BySourceExtractor,
	}
}

// StageStat summarises one pipeline stage for reporting.
type StageStat struct {
	Stage      string
	Detail     string
	Statements int
	// Precision is the stage's statement precision against ground truth
	// (-1 when not applicable).
	Precision float64
	// Health is the supervised outcome (OK, or Degraded when the stage
	// failed soft and the pipeline continued without it).
	Health resilience.Health
	// Err is the failure message for degraded stages, "" otherwise.
	Err string
	// Attempts is how many supervised attempts the stage consumed.
	Attempts int
}

// Result is the full pipeline output.
type Result struct {
	World *kb.World
	// SeedSets per class: combined KB + query-stream attributes, the input
	// to the open-Web extractors.
	SeedSets map[string]extract.AttrSet
	KBX      *kbx.Result
	QSX      *qsx.Result
	DOMX     *domx.Result
	TextX    *textx.Result
	// Statements is the union of all extractors' output.
	Statements []rdf.Statement
	// fused is the knowledge-fusion outcome; read it through Fused().
	fused *fusion.Result
	// FusionMetrics scores the fused knowledge against ground truth.
	FusionMetrics eval.Metrics
	// Augmented is the final KB: accepted triples attached to the Freebase
	// stand-in's store.
	Augmented *rdf.Store
	// stages holds per-stage statistics in execution order; read them
	// through Stats().
	stages []StageStat
	// health records every supervised stage's outcome; read it through
	// Health().
	health HealthReport
	// AlignReport summarises pre-fusion normalisation when Config.Align is
	// set; nil otherwise.
	AlignReport *align.Report
	// Discovered holds new-entity discovery output when
	// Config.DiscoverEntities is set; nil otherwise.
	Discovered *entitydisc.Result
	// Lists holds list-page extraction output when Config.ListPages is
	// set; nil otherwise.
	Lists *domx.ListResult
	// Timelines holds fused temporal knowledge when Config.Temporal is
	// set; nil otherwise.
	Timelines []temporalx.Timeline
}

// Fused returns the knowledge-fusion outcome: the accepted truths and
// per-value beliefs for every data item. It is the read surface the
// serving layer (internal/store) snapshots.
func (r *Result) Fused() *fusion.Result { return r.fused }

// Health returns the supervised outcome of every stage, including stages
// that emit no statement statistics; degraded optional stages appear with
// their error and attempt count.
func (r *Result) Health() HealthReport { return r.health }

// Stats returns per-stage statistics in execution order.
func (r *Result) Stats() []StageStat { return r.stages }

// Run executes the full Figure-1 pipeline. It is the legacy fault-free
// entry point: without injected faults every stage is deterministic and
// cannot fail, so Run panics on a supervisor error instead of returning
// it.
//
// Deprecated: use New(WithConfig(cfg)).Run(ctx), which adds cancellation,
// deadlines and chaos runs and returns errors instead of panicking.
func Run(cfg Config) *Result {
	res, err := RunContext(context.Background(), cfg)
	if err != nil {
		panic(fmt.Sprintf("core.Run: %v", err))
	}
	return res
}

// RunContext executes the pipeline as supervised stages on the dependency
// DAG.
//
// Deprecated: use New(WithConfig(cfg)).Run(ctx); RunContext is a thin
// wrapper kept so existing callers compile.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	return runPipeline(ctx, cfg)
}

// runPipeline is the engine behind Pipeline.Run and the deprecated
// wrappers. It returns a nil Result and a wrapped *resilience.StageError
// when a mandatory stage fails or the context is cancelled;
// optional-stage failures degrade the run (recorded in Result.Health()
// and the stage's StageStat) but do not error.
func runPipeline(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.Temporal && cfg.Corpus.TemporalFacts == 0 {
		cfg.Corpus.TemporalFacts = 6
	}
	if cfg.Parallelism > 1 {
		if cfg.DOM.Workers == 0 {
			cfg.DOM.Workers = cfg.Parallelism
		}
		if cfg.Text.Workers == 0 {
			cfg.Text.Workers = cfg.Parallelism
		}
	}
	p := &pipelineRun{
		cfg:   cfg,
		crit:  confidence.Default(),
		res:   &Result{SeedSets: make(map[string]extract.AttrSet)},
		stats: make(map[string]*StageStat),
		sup: &resilience.Supervisor{
			Seed:    cfg.Seed,
			Faults:  cfg.Faults,
			OnStage: cfg.StageHook,
		},
	}
	// Stream claims from the extractors into fusion unless a pre-fusion
	// stage (alignment, entity discovery) rewrites the unioned statement
	// list — those must see the complete union, so fusion falls back to
	// BuildClaims over Result.Statements.
	if !cfg.Align && !cfg.DiscoverEntities {
		producers := []string{StageKBX, StageDOMX, StageTextX}
		if cfg.ListPages {
			producers = append(producers, StageLists)
		}
		p.stream = claimstream.New(cfg.Granularity, producers...)
	}
	stages := p.stages()
	opts := sched.Options{Parallelism: cfg.Parallelism, Supervisor: p.sup}
	if p.stream != nil {
		opts.OnStageEnd = func(rep resilience.Report) {
			if rep.Health != resilience.OK {
				p.stream.Discard(rep.Stage)
			}
		}
	}
	out, err := sched.Run(ctx, opts, stages)
	if err != nil {
		return nil, err
	}
	p.assemble(stages, out)
	return p.res, nil
}

const (
	mandatory = false
	optional  = true
)

// pipelineRun carries the intermediates threaded between stages. Each
// intermediate is written by exactly one stage and read only by stages
// downstream of it in the DAG, so no lock guards them; the stats map is
// the one structure concurrent stages share.
type pipelineRun struct {
	cfg    Config
	crit   *confidence.Criterion
	res    *Result
	sup    *resilience.Supervisor
	scorer *eval.Scorer

	// stats holds per-stage statistics keyed by scheduler stage name;
	// assemble flattens it into Result.Stages in topological order.
	mu    sync.Mutex
	stats map[string]*StageStat

	// stream, when non-nil, hands extractor claim batches straight to the
	// fusion stage; nil means fusion rebuilds claims from the union.
	stream *claimstream.Stream

	dbp, fb  *kb.SourceKB
	qsStream *querystream.Stream
	sites    []*webgen.Site
	corpus   []*webgen.Document
	entIdx   *extract.EntityIndex
	kbStmts  []rdf.Statement
	listRes  *domx.ListResult
}

// stages builds the pipeline DAG. The list is given in the legacy serial
// order, which is a valid topological order, so the serial scheduler path
// (Parallelism <= 1) executes and reports stages exactly as the old
// hand-rolled chain did. Conditional stages join the graph — and their
// dependents' edge lists — only when their config switch is on.
func (p *pipelineRun) stages() []sched.Stage {
	retry := p.cfg.Retry
	if retry == (resilience.RetryPolicy{}) {
		retry = resilience.DefaultRetry()
	}
	st := func(name string, soft bool, after []string, body func(context.Context) error) sched.Stage {
		if p.stream != nil {
			if wrapped := p.produceStream(name, body); wrapped != nil {
				body = wrapped
			}
		}
		return sched.Stage{
			Name: name, After: after, Optional: soft,
			Retry: retry, Timeout: p.cfg.StageTimeout, Run: body,
		}
	}
	stages := []sched.Stage{
		// --- Substrates: the world, then five independent generators ----
		st(StageWorld, mandatory, nil, p.genWorld),
		st(StageDBpedia, mandatory, []string{StageWorld}, p.genDBpedia),
		st(StageFreebase, mandatory, []string{StageWorld}, p.genFreebase),
		st(StageStream, mandatory, []string{StageWorld}, p.genStream),
		st(StageSites, mandatory, []string{StageWorld}, p.genSites),
		st(StageCorpus, mandatory, []string{StageWorld}, p.genCorpus),
		// --- Knowledge extraction phase ---------------------------------
		st(StageKBX, mandatory, []string{StageDBpedia, StageFreebase}, p.extractKB),
		st(StageQSX, optional, []string{StageStream, StageFreebase}, p.extractQS),
		st(StageSeeds, mandatory, []string{StageKBX, StageQSX}, p.buildSeeds),
		st(StageDOMX, optional, []string{StageSeeds, StageSites}, p.extractDOM),
	}
	unionAfter := []string{StageKBX, StageDOMX, StageTextX}
	if p.cfg.ListPages {
		stages = append(stages, st(StageLists, optional, []string{StageFreebase}, p.extractLists))
		unionAfter = append(unionAfter, StageLists)
	}
	stages = append(stages,
		st(StageTextX, optional, []string{StageSeeds, StageCorpus}, p.extractText),
		st(StageUnion, mandatory, unionAfter, p.unionStatements),
	)
	fusionAfter := []string{StageUnion}
	var fusionStream []string
	if p.stream != nil {
		// Fusion consumes the extractors' claim stream instead of the
		// completed union: it may start as soon as every producer has
		// started, overlapping claim building with extraction. The union
		// stage still runs (Result.Statements keeps its exact legacy
		// content and order) but no longer gates fusion. The stage list
		// keeps union ahead of fusion, so the reported order is unchanged.
		fusionAfter = nil
		fusionStream = []string{StageKBX, StageDOMX, StageTextX}
		if p.cfg.ListPages {
			fusionStream = append(fusionStream, StageLists)
		}
	}
	if p.cfg.Temporal {
		stages = append(stages, st(StageTemporal, optional, []string{StageCorpus, StageFreebase}, p.extractTemporal))
	}
	if p.cfg.DiscoverEntities {
		// Discovery appends to the unioned statement list, so it orders
		// strictly after union (which already waits for domx and textx).
		stages = append(stages, st(StageDiscover, optional, []string{StageUnion}, p.discoverEntities))
		fusionAfter = append(fusionAfter, StageDiscover)
	}
	// --- Knowledge fusion phase and KB augmentation ---------------------
	if p.cfg.Align {
		stages = append(stages, st(StageAlign, optional, fusionAfter, p.alignStatements))
		fusionAfter = append(fusionAfter, StageAlign)
	}
	fusionStage := st(StageFusion, mandatory, fusionAfter, p.fuse)
	fusionStage.StreamAfter = fusionStream
	stages = append(stages,
		fusionStage,
		st(StageAugment, mandatory, []string{StageFusion}, p.augment),
	)
	return stages
}

// produceStream wraps a claim-producing stage body with the stream
// lifecycle: Begin at each attempt start (discarding a failed attempt's
// partial batches) and Seal on success. Non-producer stages return nil.
func (p *pipelineRun) produceStream(name string, body func(context.Context) error) func(context.Context) error {
	if !p.stream.Expects(name) {
		return nil
	}
	return func(ctx context.Context) error {
		p.stream.Begin(name)
		if err := body(ctx); err != nil {
			return err
		}
		p.stream.Seal(name)
		return nil
	}
}

// assemble converts the scheduler outcome into Result.Health and
// Result.Stages, both in the fixed topological order. OK stages surface
// the stat their body recorded (annotated with health and attempts);
// degraded stages surface a synthesized degraded stat, exactly as the
// serial pipeline reported them.
func (p *pipelineRun) assemble(stages []sched.Stage, out *sched.Result) {
	soft := make(map[string]bool, len(stages))
	for _, st := range stages {
		soft[st.Name] = st.Optional
	}
	for i, name := range out.Order {
		rep := out.Reports[i]
		sh := StageHealth{Stage: name, Health: rep.Health, Attempts: rep.Attempts, Optional: soft[name]}
		if rep.Err != nil {
			sh.Err = rep.Err.Error()
		}
		p.res.health.Stages = append(p.res.health.Stages, sh)
		switch rep.Health {
		case resilience.OK:
			if st := p.stats[name]; st != nil {
				st.Health = resilience.OK
				st.Attempts = rep.Attempts
				p.res.stages = append(p.res.stages, *st)
			}
		case resilience.Degraded:
			// A partially-run body's stat (if any) is discarded in favour
			// of the degradation record.
			p.res.stages = append(p.res.stages, StageStat{
				Stage:     name,
				Detail:    "degraded: " + sh.Err,
				Precision: -1,
				Health:    resilience.Degraded,
				Err:       sh.Err,
				Attempts:  rep.Attempts,
			})
		}
	}
}

// setStat records one stage's statistics under its scheduler name. A
// retried attempt overwrites its predecessor's slot, and concurrent stages
// write distinct keys, so stats never misattribute under parallelism.
func (p *pipelineRun) setStat(name string, st StageStat) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats[name] = &st
}

// addStat records a statement-emitting stage's stat with its precision
// against ground truth.
func (p *pipelineRun) addStat(name, detail string, stmts []rdf.Statement) {
	prec := -1.0
	if len(stmts) > 0 {
		prec = p.scorer.ScoreStatements(stmts).Precision()
	}
	p.setStat(name, StageStat{Stage: name, Detail: detail, Statements: len(stmts), Precision: prec})
}

// genWorld generates the ground-truth world that every substrate derives
// from, plus the scorer bound to it.
func (p *pipelineRun) genWorld(context.Context) error {
	p.res.World = kb.NewWorld(p.cfg.World)
	p.scorer = &eval.Scorer{World: p.res.World}
	return nil
}

// genDBpedia generates the DBpedia stand-in.
func (p *pipelineRun) genDBpedia(context.Context) error {
	p.dbp = kb.GenerateDBpedia(p.res.World, p.cfg.DBpedia)
	return nil
}

// genFreebase generates the Freebase stand-in and the entity index derived
// from it. Entity recognition uses Freebase's covered entities, as in the
// paper ("each class is specified as a set of representative entities of
// Freebase").
func (p *pipelineRun) genFreebase(context.Context) error {
	p.fb = kb.GenerateFreebase(p.res.World, p.cfg.Freebase)
	p.entIdx = extract.NewEntityIndex(p.fb)
	return nil
}

// genStream generates the query stream.
func (p *pipelineRun) genStream(context.Context) error {
	p.qsStream = querystream.Generate(p.res.World, p.cfg.Stream)
	return nil
}

// genSites generates the synthetic entity websites.
func (p *pipelineRun) genSites(context.Context) error {
	p.sites = webgen.GenerateSites(p.res.World, p.cfg.Sites)
	return nil
}

// genCorpus generates the synthetic text corpus.
func (p *pipelineRun) genCorpus(context.Context) error {
	p.corpus = webgen.GenerateCorpus(p.res.World, p.cfg.Corpus)
	return nil
}

// extractKB runs existing-KB extraction (mandatory: its statements anchor
// fusion even when every open-Web extractor degrades).
func (p *pipelineRun) extractKB(ctx context.Context) error {
	res := p.res
	res.KBX = kbx.ExtractAttributes(ctx, p.crit, p.dbp, p.fb)
	dbpStmts := kbx.ExtractStatements(ctx, p.crit, p.dbp)
	if p.stream != nil {
		// Hand each KB's statements to fusion as soon as they exist.
		p.stream.Emit(StageKBX, dbpStmts)
	}
	fbStmts := kbx.ExtractStatements(ctx, p.crit, p.fb)
	if p.stream != nil {
		p.stream.Emit(StageKBX, fbStmts)
	}
	p.kbStmts = append(dbpStmts, fbStmts...)
	obs.Current(ctx).AnnotateInt("statements", int64(len(p.kbStmts)))
	p.addStat(StageKBX, fmt.Sprintf("%d classes combined", len(res.KBX.PerClass)), p.kbStmts)
	return nil
}

// extractQS runs query-stream extraction. Its stat reports the credible
// attributes it surfaced and their ontology precision (the stage emits
// attribute evidence, not statements).
func (p *pipelineRun) extractQS(ctx context.Context) error {
	res := p.res
	qres := qsx.Extract(ctx, p.qsStream, p.entIdx, p.cfg.QSX, p.crit)
	credible, genuine := 0, 0
	for class, cr := range qres.PerClass {
		cls := res.World.Ontology.Class(class)
		for attr := range cr.Credible {
			credible++
			if cls != nil {
				if _, ok := cls.Attribute(attr); ok {
					genuine++
				}
			}
		}
	}
	prec := -1.0
	if credible > 0 {
		prec = float64(genuine) / float64(credible)
	}
	res.QSX = qres
	obs.Current(ctx).AnnotateInt("statements", int64(credible))
	p.setStat(StageQSX, StageStat{
		Stage:      StageQSX,
		Detail:     fmt.Sprintf("%d records scanned, %d credible attrs", p.qsStream.Len(), credible),
		Statements: credible,
		Precision:  prec,
	})
	return nil
}

// buildSeeds combines KB attributes with credible query-stream attributes
// per class. It is supervised as the mandatory "seeds" stage (it rebuilds
// the seed map from scratch, so a retried attempt is idempotent). A
// degraded QSX stage leaves the seeds KB-only.
func (p *pipelineRun) buildSeeds(context.Context) error {
	res := p.res
	res.SeedSets = make(map[string]extract.AttrSet)
	for _, class := range res.World.Ontology.ClassNames() {
		seeds := res.KBX.SeedSet(class).Clone()
		if res.QSX != nil {
			if cr, ok := res.QSX.PerClass[class]; ok {
				seeds.Union(cr.Credible)
			}
		}
		res.SeedSets[class] = seeds
	}
	return nil
}

// extractDOM runs seeded DOM-tree extraction.
func (p *pipelineRun) extractDOM(ctx context.Context) error {
	res := p.res
	dcfg := p.cfg.DOM
	if p.cfg.DiscoverEntities {
		dcfg.DiscoverEntities = true
	}
	if p.stream != nil {
		// Emit each class shard's statements from the extractor's own
		// worker goroutines as the shard completes; Emit is concurrency-safe.
		dcfg.Emit = func(batch []rdf.Statement) { p.stream.Emit(StageDOMX, batch) }
	}
	res.DOMX = domx.Extract(ctx, domx.FromWebgen(p.sites), p.entIdx, res.SeedSets, dcfg, p.crit)
	obs.Current(ctx).AnnotateInt("statements", int64(len(res.DOMX.Statements)))
	p.addStat(StageDOMX,
		fmt.Sprintf("%d sites, %d discovered attrs", len(p.sites), totalDiscoveredDOM(res.DOMX)), res.DOMX.Statements)
	return nil
}

// extractLists runs multi-record list-page extraction. Hosts whose class
// cannot be resolved are counted and skipped instead of silently producing
// unlabeled records.
func (p *pipelineRun) extractLists(ctx context.Context) error {
	res := p.res
	lcfg := p.cfg.ListCfg
	if lcfg == (webgen.ListConfig{}) {
		lcfg = webgen.DefaultListConfig()
	}
	lists := webgen.GenerateListPages(res.World, p.cfg.Sites.SitesPerClass, lcfg)
	classOf := hostClassResolver(res.World)
	known, unknown := splitHostsByClass(lists, classOf)
	listRes := domx.ExtractLists(ctx, domx.ListsFromWebgen(known, classOf), p.entIdx, domx.ListConfig{}, p.crit)
	p.listRes = listRes
	if p.stream != nil {
		p.stream.Emit(StageLists, listRes.Statements)
	}
	obs.Current(ctx).AnnotateInt("statements", int64(len(listRes.Statements)))
	res.Lists = listRes
	detail := fmt.Sprintf("%d regions, %d records", listRes.Regions, listRes.Records)
	if len(unknown) > 0 {
		detail += fmt.Sprintf(", %d unknown host(s) skipped", len(unknown))
	}
	p.addStat(StageLists, detail, listRes.Statements)
	return nil
}

// extractText runs seeded Web-text extraction.
func (p *pipelineRun) extractText(ctx context.Context) error {
	res := p.res
	tcfg := p.cfg.Text
	if p.cfg.DiscoverEntities {
		tcfg.DiscoverEntities = true
	}
	res.TextX = textx.Extract(ctx, p.corpus, p.entIdx, res.SeedSets, tcfg, p.crit)
	if p.stream != nil {
		p.stream.Emit(StageTextX, res.TextX.Statements)
	}
	obs.Current(ctx).AnnotateInt("statements", int64(len(res.TextX.Statements)))
	p.addStat(StageTextX,
		fmt.Sprintf("%d docs, %d patterns", len(p.corpus), len(res.TextX.Patterns)), res.TextX.Statements)
	return nil
}

// unionStatements concatenates the surviving extractors' output. It is
// supervised as the mandatory "union" stage; the slice is rebuilt from
// scratch so a retried attempt is idempotent. Degraded extractors
// contribute nothing.
func (p *pipelineRun) unionStatements(ctx context.Context) error {
	res := p.res
	res.Statements = nil
	res.Statements = append(res.Statements, p.kbStmts...)
	if res.DOMX != nil {
		res.Statements = append(res.Statements, res.DOMX.Statements...)
	}
	if p.listRes != nil {
		res.Statements = append(res.Statements, p.listRes.Statements...)
	}
	if res.TextX != nil {
		res.Statements = append(res.Statements, res.TextX.Statements...)
	}
	obs.Reg(ctx).Counter("akb_pipeline_statements_total").Add(int64(len(res.Statements)))
	obs.Current(ctx).AnnotateInt("statements", int64(len(res.Statements)))
	return nil
}

// extractTemporal runs temporal knowledge extraction and timeline fusion.
func (p *pipelineRun) extractTemporal(ctx context.Context) error {
	res := p.res
	tStmts := temporalx.ExtractText(p.corpus, p.entIdx)
	obs.Reg(ctx).Counter("akb_temporal_statements_total").Add(int64(len(tStmts)))
	obs.Current(ctx).AnnotateInt("statements", int64(len(tStmts)))
	timelines := temporalx.FuseTimelines(tStmts)
	correct, total := temporalx.Accuracy(res.World, timelines)
	prec := -1.0
	if total > 0 {
		prec = float64(correct) / float64(total)
	}
	res.Timelines = timelines
	p.setStat(StageTemporal, StageStat{
		Stage:      StageTemporal,
		Detail:     fmt.Sprintf("%d statements, %d timelines", len(tStmts), len(timelines)),
		Statements: len(tStmts),
		Precision:  prec,
	})
	return nil
}

// discoverEntities runs joint entity linking and discovery over the
// unknown-entity facts the surviving open-Web extractors harvested.
func (p *pipelineRun) discoverEntities(ctx context.Context) error {
	res := p.res
	var facts []extract.EntityFact
	if res.DOMX != nil {
		facts = append(facts, res.DOMX.NewEntityFacts...)
	}
	if res.TextX != nil {
		facts = append(facts, res.TextX.NewEntityFacts...)
	}
	res.Discovered = entitydisc.Discover(facts, p.entIdx, p.cfg.DiscoverCfg)
	discStmts := res.Discovered.Statements(p.crit.Score(extract.ExtractorDOM, 2, 2))
	res.Statements = append(res.Statements, discStmts...)
	obs.Reg(ctx).Counter("akb_discover_entities_total").Add(int64(len(res.Discovered.Entities)))
	obs.Current(ctx).AnnotateInt("statements", int64(len(discStmts)))
	p.addStat(StageDiscover,
		fmt.Sprintf("%d new entities, %d mentions linked, %d rejected",
			len(res.Discovered.Entities), len(res.Discovered.Linked), res.Discovered.Rejected),
		discStmts)
	return nil
}

// alignStatements runs pre-fusion normalisation.
func (p *pipelineRun) alignStatements(ctx context.Context) error {
	res := p.res
	acfg := p.cfg.AlignCfg
	if acfg == (align.Config{}) {
		acfg = align.DefaultConfig()
	}
	stmts, rep := align.Normalize(res.Statements, acfg)
	res.Statements = stmts
	res.AlignReport = &rep
	obs.Reg(ctx).Counter("akb_align_corrections_total").Add(int64(rep.CorrectedValues))
	obs.Current(ctx).AnnotateInt("statements", int64(len(res.Statements)))
	p.setStat(StageAlign, StageStat{
		Stage: StageAlign,
		Detail: fmt.Sprintf("%d synonyms merged, %d values corrected, %d sub-attrs",
			len(rep.Synonyms), rep.CorrectedValues, len(rep.SubAttributes)),
		Statements: len(res.Statements),
		Precision:  p.scorer.ScoreStatements(res.Statements).Precision(),
	})
	return nil
}

// fuse resolves conflicts across whatever statements survived extraction.
func (p *pipelineRun) fuse(ctx context.Context) error {
	res := p.res
	reg := obs.Reg(ctx)
	method := p.cfg.Method
	if method == nil {
		// The default method carries the run's registry so the mapreduce
		// executor underneath it records fanout and task latencies. Its
		// worker pool follows the pipeline's parallelism: a Parallelism<=1
		// run stays genuinely serial instead of silently fanning out to
		// GOMAXPROCS, which kept the "serial" baseline from ever losing to
		// the parallel configuration it was compared against.
		workers := p.cfg.Parallelism
		if workers < 1 {
			workers = 1
		}
		method = &fusion.Full{Forest: res.World.Hier, Workers: workers, Obs: reg}
	}
	var claims *fusion.Claims
	if p.stream != nil {
		var err error
		claims, err = p.stream.Finalize(ctx)
		if err != nil {
			return err
		}
	} else {
		claims = fusion.BuildClaims(res.Statements, p.cfg.Granularity)
	}
	res.fused = method.Fuse(claims)
	res.FusionMetrics = p.scorer.ScoreFusion(res.fused)
	reg.Counter("akb_fusion_claims_total").Add(int64(claims.NumClaims()))
	reg.Gauge("akb_fusion_sources").Set(float64(len(claims.SourceNames)))
	conflicts, truths := 0, 0
	for _, it := range claims.Items {
		if len(it.Values) > 1 {
			conflicts++
		}
	}
	for _, d := range res.fused.Decisions {
		truths += len(d.Truths)
	}
	reg.Counter("akb_fusion_conflicts_total").Add(int64(conflicts))
	reg.Counter("akb_fusion_truths_total").Add(int64(truths))
	obs.Current(ctx).AnnotateInt("statements", int64(claims.NumClaims()))
	// The stat slot is keyed by the scheduler name; the rendered stage
	// label carries the fusion method, as it always has.
	p.setStat(StageFusion, StageStat{
		Stage:      "fusion/" + res.fused.Method,
		Detail:     fmt.Sprintf("%d items, %d sources", len(claims.Items), len(claims.SourceNames)),
		Statements: claims.NumClaims(),
		Precision:  res.FusionMetrics.Precision(),
	})
	return nil
}

// augment attaches accepted triples to the Freebase stand-in's store.
func (p *pipelineRun) augment(ctx context.Context) error {
	res := p.res
	res.Augmented = rdf.NewStore()
	for _, d := range res.fused.Decisions {
		for _, v := range d.Truths {
			res.Augmented.Add(rdf.T(d.Item.Subject, d.Item.Predicate, v))
		}
	}
	obs.Reg(ctx).Counter("akb_pipeline_augmented_triples_total").Add(int64(res.Augmented.Len()))
	obs.Current(ctx).AnnotateInt("statements", int64(res.Augmented.Len()))
	p.setStat(StageAugment, StageStat{
		Stage:      StageAugment,
		Detail:     "accepted triples attached to Freebase",
		Statements: res.Augmented.Len(),
		Precision:  -1,
	})
	return nil
}

// hostClassResolver maps generated hostnames ("film-0.example.com") back to
// their class names; unknown hosts resolve to "".
func hostClassResolver(w *kb.World) func(string) string {
	byPrefix := map[string]string{}
	for _, c := range w.Ontology.ClassNames() {
		byPrefix[strings.ToLower(c)] = c
	}
	return func(host string) string {
		prefix := host
		if i := strings.IndexByte(host, '-'); i >= 0 {
			prefix = host[:i]
		}
		return byPrefix[prefix]
	}
}

// splitHostsByClass partitions generated list pages into hosts whose class
// resolves and hosts that do not. Unknown hosts previously mapped to the
// empty class and silently produced unlabeled records; now they are
// skipped and surfaced (sorted) so the stage detail can count them.
func splitHostsByClass(lists map[string][]*webgen.ListPage, classOf func(string) string) (known map[string][]*webgen.ListPage, unknown []string) {
	known = make(map[string][]*webgen.ListPage, len(lists))
	for host, pages := range lists {
		if classOf(host) == "" {
			unknown = append(unknown, host)
			continue
		}
		known[host] = pages
	}
	sort.Strings(unknown)
	return known, unknown
}

func totalDiscoveredDOM(r *domx.Result) int {
	n := 0
	for _, cr := range r.PerClass {
		n += cr.Discovered.Len()
	}
	return n
}

// AttributeGrowth reports, per class, the attribute-set sizes along the
// pipeline: KB-combined seeds, +query stream, +DOM discovery, +text
// discovery — the ontology-augmentation story of the paper.
type AttributeGrowth struct {
	Class      string
	KBCombined int
	WithQuery  int
	WithDOM    int
	WithText   int
}

// Growth summarises attribute-set growth across the pipeline stages. It
// tolerates degraded runs: a stage that failed soft contributes no growth
// beyond its predecessor.
func (r *Result) Growth() []AttributeGrowth {
	classes := r.World.Ontology.ClassNames()
	out := make([]AttributeGrowth, 0, len(classes))
	for _, class := range classes {
		g := AttributeGrowth{Class: class}
		g.KBCombined = r.KBX.SeedSet(class).Len()
		if ss, ok := r.SeedSets[class]; ok {
			g.WithQuery = ss.Len()
		} else {
			g.WithQuery = g.KBCombined
		}
		g.WithDOM = g.WithQuery
		if r.DOMX != nil {
			if cr, ok := r.DOMX.PerClass[class]; ok {
				g.WithDOM = cr.All.Len()
			}
		}
		extra := 0
		if r.TextX != nil {
			if cr, ok := r.TextX.PerClass[class]; ok {
				for attr := range cr.Discovered {
					covered := false
					if r.DOMX != nil {
						if dcr, ok2 := r.DOMX.PerClass[class]; ok2 && dcr.All.Has(attr) {
							covered = true
						}
					}
					if !covered {
						extra++
					}
				}
			}
		}
		g.WithText = g.WithDOM + extra
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}
