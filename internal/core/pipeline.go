// Package core implements the paper's Figure-1 framework end to end: the
// knowledge-extraction phase (query stream + existing KBs seed the DOM-tree
// and Web-text extractors; all four emit confidence-scored RDF statements)
// followed by the knowledge-fusion phase (conflict resolution with
// hierarchical value spaces, source/extractor correlations and confidence
// weighting), finishing with KB augmentation — attaching the fused triples
// to the Freebase stand-in.
package core

import (
	"fmt"
	"sort"
	"strings"

	"akb/internal/align"
	"akb/internal/confidence"
	"akb/internal/entitydisc"
	"akb/internal/eval"
	"akb/internal/extract"
	"akb/internal/extract/domx"
	"akb/internal/extract/kbx"
	"akb/internal/extract/qsx"
	"akb/internal/extract/textx"
	"akb/internal/fusion"
	"akb/internal/kb"
	"akb/internal/querystream"
	"akb/internal/rdf"
	"akb/internal/temporalx"
	"akb/internal/webgen"
)

// Config parameterises a full pipeline run. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// Seed drives every stochastic component.
	Seed int64
	// World configures the ground-truth world.
	World kb.WorldConfig
	// DBpedia and Freebase configure the source KBs.
	DBpedia  kb.KBGenConfig
	Freebase kb.KBGenConfig
	// Stream configures query-stream generation; TotalRecords 0 keeps the
	// stream proportional to the world instead of the full Table-3 scale.
	Stream querystream.GenConfig
	// Sites and Corpus configure the synthetic Web.
	Sites  webgen.SiteConfig
	Corpus webgen.TextConfig
	// QSX, DOM and Text configure the extractors.
	QSX  qsx.Config
	DOM  domx.Config
	Text textx.Config
	// Granularity selects the fusion source granularity.
	Granularity fusion.Granularity
	// Method is the fusion method; nil uses the paper's FULL composition.
	Method fusion.Method
	// Align enables the pre-fusion normalisation step (synonym merging,
	// misspelling correction, sub-attribute identification).
	Align bool
	// AlignCfg tunes alignment; the zero value uses align.DefaultConfig().
	AlignCfg align.Config
	// DiscoverEntities enables the joint entity-linking-and-discovery
	// extension: the DOM and text extractors harvest facts about entities
	// the KBs do not cover, entitydisc clusters and links them, and the
	// created entities' statements join the fusion input.
	DiscoverEntities bool
	// DiscoverCfg tunes entity discovery; zero uses defaults.
	DiscoverCfg entitydisc.Config
	// ListPages enables multi-record list-page generation and extraction
	// (the record-mining setting of Liu et al. / Bing et al.).
	ListPages bool
	// ListCfg tunes list pages; zero uses webgen.DefaultListConfig().
	ListCfg webgen.ListConfig
	// Temporal enables temporal knowledge extraction: the corpus renders
	// time-scoped sentences about temporal attributes and temporalx fuses
	// the extracted spans into timelines.
	Temporal bool
}

// DefaultConfig returns a moderate-scale configuration that runs in a few
// seconds.
func DefaultConfig() Config {
	return Config{
		Seed:     1,
		World:    kb.WorldConfig{Seed: 1, EntitiesPerClass: 40, AttrsPerEntity: 18},
		DBpedia:  kb.KBGenConfig{Seed: 2, Coverage: 0.6, ErrorRate: 0.02},
		Freebase: kb.KBGenConfig{Seed: 3, Coverage: 0.8, ErrorRate: 0.02},
		Stream: querystream.GenConfig{
			Seed: 4, TotalRecords: 30000, Threshold: 5,
			Plans: []querystream.ClassPlan{
				{Class: "Book", Relevant: 800, Credible: 20, NoncrediblePool: 15},
				{Class: "Film", Relevant: 1200, Credible: 15, NoncrediblePool: 20},
				{Class: "Country", Relevant: 1100, Credible: 30, NoncrediblePool: 25},
				{Class: "University", Relevant: 120, Credible: 8, NoncrediblePool: 10},
				{Class: "Hotel", Relevant: 60, Credible: 0, NoncrediblePool: 25},
			},
		},
		Sites: webgen.SiteConfig{
			Seed: 5, SitesPerClass: 4, PagesPerSite: 14, AttrsPerPage: 10,
			ValueErrorRate: 0.12, NoiseNodes: 5, JitterProb: 0.25, GeneralizeProb: 0.25,
		},
		Corpus: webgen.TextConfig{
			Seed: 6, DocsPerClass: 12, FactsPerDoc: 12,
			ValueErrorRate: 0.15, DistractorShare: 0.7, GeneralizeProb: 0.25,
		},
		QSX:         qsx.DefaultConfig(),
		DOM:         domx.DefaultConfig(),
		Text:        textx.DefaultConfig(),
		Granularity: fusion.BySourceExtractor,
	}
}

// StageStat summarises one pipeline stage for reporting.
type StageStat struct {
	Stage      string
	Detail     string
	Statements int
	// Precision is the stage's statement precision against ground truth
	// (-1 when not applicable).
	Precision float64
}

// Result is the full pipeline output.
type Result struct {
	World *kb.World
	// SeedSets per class: combined KB + query-stream attributes, the input
	// to the open-Web extractors.
	SeedSets map[string]extract.AttrSet
	KBX      *kbx.Result
	QSX      *qsx.Result
	DOMX     *domx.Result
	TextX    *textx.Result
	// Statements is the union of all extractors' output.
	Statements []rdf.Statement
	// Fused is the knowledge-fusion outcome.
	Fused *fusion.Result
	// FusionMetrics scores Fused against ground truth.
	FusionMetrics eval.Metrics
	// Augmented is the final KB: accepted triples attached to the Freebase
	// stand-in's store.
	Augmented *rdf.Store
	// Stages reports per-stage statistics in execution order.
	Stages []StageStat
	// AlignReport summarises pre-fusion normalisation when Config.Align is
	// set; nil otherwise.
	AlignReport *align.Report
	// Discovered holds new-entity discovery output when
	// Config.DiscoverEntities is set; nil otherwise.
	Discovered *entitydisc.Result
	// Lists holds list-page extraction output when Config.ListPages is
	// set; nil otherwise.
	Lists *domx.ListResult
	// Timelines holds fused temporal knowledge when Config.Temporal is
	// set; nil otherwise.
	Timelines []temporalx.Timeline
}

// Run executes the full Figure-1 pipeline.
func Run(cfg Config) *Result {
	crit := confidence.Default()
	res := &Result{SeedSets: make(map[string]extract.AttrSet)}

	// The real world and the data sources derived from it.
	if cfg.Temporal && cfg.Corpus.TemporalFacts == 0 {
		cfg.Corpus.TemporalFacts = 6
	}
	res.World = kb.NewWorld(cfg.World)
	dbp := kb.GenerateDBpedia(res.World, cfg.DBpedia)
	fb := kb.GenerateFreebase(res.World, cfg.Freebase)
	stream := querystream.Generate(res.World, cfg.Stream)
	sites := webgen.GenerateSites(res.World, cfg.Sites)
	corpus := webgen.GenerateCorpus(res.World, cfg.Corpus)
	scorer := &eval.Scorer{World: res.World}

	// --- Knowledge extraction phase -----------------------------------

	// 1. Existing KBs.
	res.KBX = kbx.ExtractAttributes(crit, dbp, fb)
	kbStmts := append(kbx.ExtractStatements(crit, dbp), kbx.ExtractStatements(crit, fb)...)
	res.addStage(scorer, "extract/kbx", fmt.Sprintf("%d classes combined", len(res.KBX.PerClass)), kbStmts)

	// 2. Query stream. Entity recognition uses Freebase's covered entities,
	// as in the paper ("each class is specified as a set of representative
	// entities of Freebase").
	entIdx := extract.NewEntityIndex(fb)
	res.QSX = qsx.Extract(stream, entIdx, cfg.QSX, crit)
	res.addStage(scorer, "extract/qsx", fmt.Sprintf("%d records scanned", stream.Len()), nil)

	// 3. Seed sets: combined KB attributes ∪ credible query-stream
	// attributes, per class.
	for _, class := range res.World.Ontology.ClassNames() {
		seeds := res.KBX.SeedSet(class).Clone()
		if cr, ok := res.QSX.PerClass[class]; ok {
			seeds.Union(cr.Credible)
		}
		res.SeedSets[class] = seeds
	}

	// 4. DOM trees, seeded.
	if cfg.DiscoverEntities {
		cfg.DOM.DiscoverEntities = true
		cfg.Text.DiscoverEntities = true
	}
	res.DOMX = domx.Extract(domx.FromWebgen(sites), entIdx, res.SeedSets, cfg.DOM, crit)
	res.addStage(scorer, "extract/domx",
		fmt.Sprintf("%d sites, %d discovered attrs", len(sites), totalDiscoveredDOM(res.DOMX)), res.DOMX.Statements)

	// 4b. Multi-record list pages (optional).
	var listRes *domx.ListResult
	if cfg.ListPages {
		lcfg := cfg.ListCfg
		if lcfg == (webgen.ListConfig{}) {
			lcfg = webgen.DefaultListConfig()
		}
		lists := webgen.GenerateListPages(res.World, cfg.Sites.SitesPerClass, lcfg)
		classOf := hostClassResolver(res.World)
		listRes = domx.ExtractLists(domx.ListsFromWebgen(lists, classOf), entIdx, domx.ListConfig{}, crit)
		res.Lists = listRes
		res.addStage(scorer, "extract/lists",
			fmt.Sprintf("%d regions, %d records", listRes.Regions, listRes.Records), listRes.Statements)
	}

	// 5. Web texts, seeded.
	res.TextX = textx.Extract(corpus, entIdx, res.SeedSets, cfg.Text, crit)
	res.addStage(scorer, "extract/textx",
		fmt.Sprintf("%d docs, %d patterns", len(corpus), len(res.TextX.Patterns)), res.TextX.Statements)

	// Union of all statements.
	res.Statements = append(res.Statements, kbStmts...)
	res.Statements = append(res.Statements, res.DOMX.Statements...)
	if listRes != nil {
		res.Statements = append(res.Statements, listRes.Statements...)
	}
	res.Statements = append(res.Statements, res.TextX.Statements...)

	// Optional temporal knowledge extraction and timeline fusion.
	if cfg.Temporal {
		tStmts := temporalx.ExtractText(corpus, entIdx)
		res.Timelines = temporalx.FuseTimelines(tStmts)
		correct, total := temporalx.Accuracy(res.World, res.Timelines)
		prec := -1.0
		if total > 0 {
			prec = float64(correct) / float64(total)
		}
		res.Stages = append(res.Stages, StageStat{
			Stage:      "extract/temporal",
			Detail:     fmt.Sprintf("%d statements, %d timelines", len(tStmts), len(res.Timelines)),
			Statements: len(tStmts),
			Precision:  prec,
		})
	}

	// Optional joint entity linking and discovery over the unknown-entity
	// facts the open-Web extractors harvested.
	if cfg.DiscoverEntities {
		facts := append(append([]extract.EntityFact(nil), res.DOMX.NewEntityFacts...), res.TextX.NewEntityFacts...)
		res.Discovered = entitydisc.Discover(facts, entIdx, cfg.DiscoverCfg)
		discStmts := res.Discovered.Statements(crit.Score(extract.ExtractorDOM, 2, 2))
		res.Statements = append(res.Statements, discStmts...)
		res.addStage(scorer, "discover",
			fmt.Sprintf("%d new entities, %d mentions linked, %d rejected",
				len(res.Discovered.Entities), len(res.Discovered.Linked), res.Discovered.Rejected),
			discStmts)
	}

	// --- Knowledge fusion phase ----------------------------------------

	if cfg.Align {
		acfg := cfg.AlignCfg
		if acfg == (align.Config{}) {
			acfg = align.DefaultConfig()
		}
		var rep align.Report
		res.Statements, rep = align.Normalize(res.Statements, acfg)
		res.AlignReport = &rep
		res.Stages = append(res.Stages, StageStat{
			Stage: "align",
			Detail: fmt.Sprintf("%d synonyms merged, %d values corrected, %d sub-attrs",
				len(rep.Synonyms), rep.CorrectedValues, len(rep.SubAttributes)),
			Statements: len(res.Statements),
			Precision:  scorer.ScoreStatements(res.Statements).Precision(),
		})
	}

	method := cfg.Method
	if method == nil {
		method = &fusion.Full{Forest: res.World.Hier}
	}
	claims := fusion.BuildClaims(res.Statements, cfg.Granularity)
	res.Fused = method.Fuse(claims)
	res.FusionMetrics = scorer.ScoreFusion(res.Fused)
	res.Stages = append(res.Stages, StageStat{
		Stage:      "fusion/" + res.Fused.Method,
		Detail:     fmt.Sprintf("%d items, %d sources", len(claims.Items), len(claims.SourceNames)),
		Statements: claims.NumClaims(),
		Precision:  res.FusionMetrics.Precision(),
	})

	// --- KB augmentation ------------------------------------------------

	res.Augmented = rdf.NewStore()
	for _, d := range res.Fused.Decisions {
		for _, v := range d.Truths {
			res.Augmented.Add(rdf.T(d.Item.Subject, d.Item.Predicate, v))
		}
	}
	res.Stages = append(res.Stages, StageStat{
		Stage:      "augment",
		Detail:     "accepted triples attached to Freebase",
		Statements: res.Augmented.Len(),
		Precision:  -1,
	})
	return res
}

// hostClassResolver maps generated hostnames ("film-0.example.com") back to
// their class names.
func hostClassResolver(w *kb.World) func(string) string {
	byPrefix := map[string]string{}
	for _, c := range w.Ontology.ClassNames() {
		byPrefix[strings.ToLower(c)] = c
	}
	return func(host string) string {
		prefix := host
		if i := strings.IndexByte(host, '-'); i >= 0 {
			prefix = host[:i]
		}
		return byPrefix[prefix]
	}
}

func (r *Result) addStage(scorer *eval.Scorer, stage, detail string, stmts []rdf.Statement) {
	prec := -1.0
	if len(stmts) > 0 {
		prec = scorer.ScoreStatements(stmts).Precision()
	}
	r.Stages = append(r.Stages, StageStat{Stage: stage, Detail: detail, Statements: len(stmts), Precision: prec})
}

func totalDiscoveredDOM(r *domx.Result) int {
	n := 0
	for _, cr := range r.PerClass {
		n += cr.Discovered.Len()
	}
	return n
}

// AttributeGrowth reports, per class, the attribute-set sizes along the
// pipeline: KB-combined seeds, +query stream, +DOM discovery, +text
// discovery — the ontology-augmentation story of the paper.
type AttributeGrowth struct {
	Class      string
	KBCombined int
	WithQuery  int
	WithDOM    int
	WithText   int
}

// Growth summarises attribute-set growth across the pipeline stages.
func (r *Result) Growth() []AttributeGrowth {
	classes := r.World.Ontology.ClassNames()
	out := make([]AttributeGrowth, 0, len(classes))
	for _, class := range classes {
		g := AttributeGrowth{Class: class}
		g.KBCombined = r.KBX.SeedSet(class).Len()
		g.WithQuery = r.SeedSets[class].Len()
		if cr, ok := r.DOMX.PerClass[class]; ok {
			g.WithDOM = cr.All.Len()
		} else {
			g.WithDOM = g.WithQuery
		}
		extra := 0
		if cr, ok := r.TextX.PerClass[class]; ok {
			for attr := range cr.Discovered {
				if dcr, ok2 := r.DOMX.PerClass[class]; !ok2 || !dcr.All.Has(attr) {
					extra++
				}
			}
		}
		g.WithText = g.WithDOM + extra
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Class < out[j].Class })
	return out
}
