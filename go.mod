module akb

go 1.22
