// Datalog planner benchmark: the greedy selectivity-ordered plan against
// the naive query-order plan on an adversarially skewed store, across
// serving layouts. Writes BENCH_query.json which CI archives per commit
// and gates on (greedy must be >=2x naive). Run with:
//
//	go test -bench=Datalog -benchtime=50x
package akb_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"akb/internal/datalog"
	"akb/internal/obs"
	"akb/internal/store"
)

// skewedFacts builds the planner's adversarial case: one attribute with a
// huge postings list, one with a tiny one, joined on the entity. A naive
// left-to-right execution of `?x wide ?v . ?x narrow ?w` scans every wide
// fact and probes narrow per binding; the greedy plan leads with the
// narrow postings list and probes wide only for the handful of entities
// that can match.
func skewedFacts() []store.Fact {
	const wide, narrow = 20000, 8
	facts := make([]store.Fact, 0, wide+narrow)
	for i := 0; i < wide; i++ {
		facts = append(facts, store.Fact{
			Entity: fmt.Sprintf("entity-%05d", i), Class: "Thing",
			Attr: "wide", Value: fmt.Sprintf("w-%05d", i), Confidence: 0.9,
		})
	}
	for i := 0; i < narrow; i++ {
		facts = append(facts, store.Fact{
			Entity: fmt.Sprintf("entity-%05d", i*1000), Class: "Thing",
			Attr: "narrow", Value: fmt.Sprintf("n-%d", i), Confidence: 0.9,
		})
	}
	return facts
}

var benchDatalogFacts = sync.OnceValue(skewedFacts)

// BenchmarkDatalog runs the same conjunctive query under both plans on
// the flat and sharded layouts, plus the parallel executor, and records
// ns/op, index probes and the greedy speedup into BENCH_query.json.
func BenchmarkDatalog(b *testing.B) {
	q, err := datalog.Parse(`?x wide ?v . ?x narrow ?w`)
	if err != nil {
		b.Fatal(err)
	}
	facts := benchDatalogFacts()
	type layout struct {
		name string
		src  store.Querier
	}
	layouts := []layout{
		{"flat", store.New(facts)},
		{fmt.Sprintf("sharded-%d", store.DefaultShards), store.NewSharded(facts, store.DefaultShards)},
	}
	ctx := context.Background()
	rows := make([]map[string]any, 0, len(layouts))
	for _, l := range layouts {
		nsPerOp := map[string]int64{}
		probes := map[string]int64{}
		for _, sub := range []struct {
			name string
			opts datalog.Options
		}{
			{"greedy", datalog.Options{}},
			{"naive", datalog.Options{Naive: true}},
			{"greedy-parallel-4", datalog.Options{Parallelism: 4}},
		} {
			sub := sub
			b.Run(fmt.Sprintf("%s/%s", l.name, sub.name), func(b *testing.B) {
				b.ReportAllocs()
				start := time.Now()
				var res *datalog.Result
				for i := 0; i < b.N; i++ {
					res, err = datalog.Run(ctx, l.src, q, sub.opts)
					if err != nil {
						b.Fatal(err)
					}
					if res.Total != 8 {
						b.Fatalf("total = %d, want 8", res.Total)
					}
				}
				nsPerOp[sub.name] = time.Since(start).Nanoseconds() / int64(b.N)
				probes[sub.name] = res.Probes
			})
		}
		greedy, naive := nsPerOp["greedy"], nsPerOp["naive"]
		if greedy == 0 || naive == 0 {
			return
		}
		rows = append(rows, map[string]any{
			"layout":              l.name,
			"greedy_ns_per_op":    greedy,
			"naive_ns_per_op":     naive,
			"parallel4_ns_per_op": nsPerOp["greedy-parallel-4"],
			"greedy_probes":       probes["greedy"],
			"naive_probes":        probes["naive"],
			"speedup":             float64(naive) / float64(greedy),
		})
	}
	writeBenchQuery(b, map[string]any{
		"query":   q.String(),
		"facts":   len(facts),
		"matches": 8,
		"rows":    rows,
	})
}

// writeBenchQuery read-modify-writes the datalog section of
// BENCH_query.json, following the BENCH_serve.json convention so future
// query benchmarks can add sections without clobbering this one.
func writeBenchQuery(b *testing.B, v any) {
	b.Helper()
	out := map[string]json.RawMessage{}
	if raw, err := os.ReadFile("BENCH_query.json"); err == nil {
		_ = json.Unmarshal(raw, &out)
	}
	raw, err := json.Marshal(v)
	if err != nil {
		b.Fatal(err)
	}
	out["datalog"] = raw
	f, err := os.Create("BENCH_query.json")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if err := obs.WriteJSON(f, out); err != nil {
		b.Fatal(err)
	}
}
