// Package akb_test benchmarks every experiment of the reproduction: one
// benchmark per paper table/figure (E1-E7 in DESIGN.md) plus per-method
// fusion benchmarks. Run with:
//
//	go test -bench=. -benchmem
package akb_test

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"akb/internal/align"
	"akb/internal/core"
	"akb/internal/eval"
	"akb/internal/experiments"
	"akb/internal/fusion"
	"akb/internal/obs"
	"akb/internal/rdf"
	"akb/internal/resilience"
)

// BenchmarkTable1KBStats regenerates Table 1 (E1): materialising the four
// representative KBs and counting entities and attributes.
func BenchmarkTable1KBStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(int64(i + 1))
		if len(rows) != 4 {
			b.Fatal("bad Table 1")
		}
	}
}

// BenchmarkTable2KBExtraction regenerates Table 2 (E2): synthetic DBpedia
// and Freebase generation plus existing-KB attribute extraction and
// combination.
func BenchmarkTable2KBExtraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table2(int64(i + 1))
		if len(rows) != 5 {
			b.Fatal("bad Table 2")
		}
	}
}

// BenchmarkTable3QueryStream regenerates Table 3 (E3) at three stream
// scales; /100 is the default experiment scale (292,839 records).
func BenchmarkTable3QueryStream(b *testing.B) {
	for _, scale := range []int{1000, 200, 100} {
		records := 29283918 / scale
		b.Run(fmt.Sprintf("records=%d", records), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows := experiments.Table3(experiments.Table3Config{Seed: int64(i + 1), Scale: scale})
				if len(rows) != 5 {
					b.Fatal("bad Table 3")
				}
			}
		})
	}
}

// BenchmarkFigure1Pipeline runs the full extraction+fusion pipeline (E4).
func BenchmarkFigure1Pipeline(b *testing.B) {
	cfg := core.DefaultConfig()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep := experiments.Pipeline(cfg)
		if rep.AugmentedTriples == 0 {
			b.Fatal("empty pipeline")
		}
	}
}

// BenchmarkAlgorithm1DOMExtraction measures Algorithm 1 (E5) across website
// counts: DOM parsing, entity recognition, tag-path induction and
// extraction.
func BenchmarkAlgorithm1DOMExtraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.DOMSweep(int64(i + 1))
		if len(rows) == 0 {
			b.Fatal("empty sweep")
		}
	}
}

// BenchmarkFusionMethods measures each fusion method (E6) on the same
// pipeline-derived claim set.
func BenchmarkFusionMethods(b *testing.B) {
	res := core.Run(core.DefaultConfig())
	claims := fusion.BuildClaims(res.Statements, fusion.BySourceExtractor)
	scorer := &eval.Scorer{World: res.World}
	for _, m := range fusion.AllMethods(res.World.Hier) {
		m := m
		b.Run(m.Name(), func(b *testing.B) {
			b.ReportAllocs()
			var metrics eval.Metrics
			for i := 0; i < b.N; i++ {
				r := m.Fuse(claims)
				metrics = scorer.ScoreFusion(r)
			}
			b.ReportMetric(metrics.Precision(), "precision")
			b.ReportMetric(metrics.Recall(), "recall")
			b.ReportMetric(metrics.F1(), "F1")
		})
	}
}

// BenchmarkFusionAblations measures the E7 ablation suite end to end.
func BenchmarkFusionAblations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Ablations(int64(i + 1))
		if len(rows) != 8 {
			b.Fatal("bad ablations")
		}
	}
}

// BenchmarkClaimBuilding measures grouping raw statements into fusion
// claims, the shuffle step every fusion run pays.
func BenchmarkClaimBuilding(b *testing.B) {
	res := core.Run(core.DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := fusion.BuildClaims(res.Statements, fusion.BySourceExtractor)
		if len(c.Items) == 0 {
			b.Fatal("no claims")
		}
	}
}

// BenchmarkAugmentedExport measures N-Triples serialisation of the final KB.
func BenchmarkAugmentedExport(b *testing.B) {
	res := core.Run(core.DefaultConfig())
	triples := res.Augmented.All()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rdf.WriteNTriples(discard{}, triples); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkAlignment measures the pre-fusion normalisation step on a
// synonym- and typo-laden pipeline output (E8).
func BenchmarkAlignment(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.Sites.SynonymProb = 0.3
	cfg.Sites.TypoProb = 0.1
	res := core.Run(cfg)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, _ := align.Normalize(res.Statements, align.DefaultConfig())
		if len(out) == 0 {
			b.Fatal("empty alignment output")
		}
	}
}

// BenchmarkEntityDiscovery measures the coverage sweep of the joint
// entity-linking-and-discovery extension (E9).
func BenchmarkEntityDiscovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.EntityDiscovery(int64(i + 1))
		if len(rows) != 4 {
			b.Fatal("bad discovery sweep")
		}
	}
}

// BenchmarkCalibration measures belief-bucket calibration (E10).
func BenchmarkCalibration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Calibration(int64(i+1), 10)
		if len(rows) != 10 {
			b.Fatal("bad calibration")
		}
	}
}

// BenchmarkTemporal measures temporal extraction and timeline fusion across
// the noise sweep (E11).
func BenchmarkTemporal(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Temporal(int64(i + 1))
		if len(rows) != 4 {
			b.Fatal("bad temporal sweep")
		}
	}
}

// BenchmarkListExtraction measures multi-record list-page mining.
func BenchmarkListExtraction(b *testing.B) {
	cfg := core.DefaultConfig()
	cfg.ListPages = true
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := core.Run(cfg)
		if res.Lists.Records == 0 {
			b.Fatal("no records")
		}
	}
}

// BenchmarkGranularity measures the provenance-granularity comparison (E13).
func BenchmarkGranularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Granularity(int64(i + 1))
		if len(rows) != 6 {
			b.Fatal("bad granularity rows")
		}
	}
}

// BenchmarkScalability measures the world-size scaling experiment (E14).
func BenchmarkScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Scalability(int64(i + 1))
		if len(rows) != 4 {
			b.Fatal("bad scale rows")
		}
	}
}

// BenchmarkSupervisorOverhead measures the per-stage cost of the
// resilience harness itself: a no-op stage run under the supervisor with
// retries, fault lookup and health accounting enabled (faults never fire).
func BenchmarkSupervisorOverhead(b *testing.B) {
	sup := &resilience.Supervisor{
		Seed:   1,
		Faults: &resilience.FaultPlan{Seed: 1, Stages: map[string]resilience.StageFault{"other": {FailProb: 1}}},
	}
	st := resilience.Stage{
		Name:  "noop",
		Retry: resilience.DefaultRetry(),
		Run:   func(context.Context) error { return nil },
	}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if rep := sup.Run(ctx, st); rep.Health != resilience.OK {
			b.Fatal("noop stage failed")
		}
	}
}

// BenchmarkSupervisedPipeline runs the full pipeline through RunContext —
// the supervised path — so its cost can be compared against
// BenchmarkFigure1Pipeline (the same work via the legacy wrapper).
func BenchmarkSupervisedPipeline(b *testing.B) {
	cfg := core.DefaultConfig()
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.RunContext(ctx, cfg)
		if err != nil || res.Augmented.Len() == 0 {
			b.Fatalf("pipeline failed: %v", err)
		}
	}
}

// BenchmarkPipelineTelemetry runs the supervised pipeline with the full
// telemetry layer attached — spans, counters and latency histograms on
// every stage — and writes the final iteration's RunReport to
// BENCH_pipeline.json. CI archives that file per commit, so the per-stage
// duration and throughput trajectory is diffable across PRs. Comparing
// against BenchmarkSupervisedPipeline gives the telemetry overhead.
func BenchmarkPipelineTelemetry(b *testing.B) {
	cfg := core.DefaultConfig()
	b.ReportAllocs()
	var last *obs.RunReport
	for i := 0; i < b.N; i++ {
		run := obs.NewRun()
		res, err := core.RunContext(obs.Into(context.Background(), run), cfg)
		if err != nil || res.Augmented.Len() == 0 {
			b.Fatalf("pipeline failed: %v", err)
		}
		rr, err := run.Report(res.Health())
		if err != nil {
			b.Fatal(err)
		}
		if len(rr.RootSpans()) == 0 || len(rr.Metrics) == 0 {
			b.Fatal("telemetry run recorded no spans or metrics")
		}
		last = rr
	}
	b.StopTimer()
	f, err := os.Create("BENCH_pipeline.json")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if err := last.WriteJSON(f); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkChaosDegradedPipeline measures the degraded path: every
// optional stage fails permanently at 100%, so the run is the mandatory
// spine (substrates, KB extraction, fusion, augmentation) plus
// supervision and degradation bookkeeping.
func BenchmarkChaosDegradedPipeline(b *testing.B) {
	cfg := core.DefaultConfig()
	plan := &resilience.FaultPlan{Seed: 1, Stages: map[string]resilience.StageFault{}}
	for _, st := range core.OptionalStageNames() {
		plan.Stages[st] = resilience.StageFault{FailProb: 1}
	}
	cfg.Faults = plan
	cfg.Retry = resilience.RetryPolicy{MaxAttempts: 1}
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.RunContext(ctx, cfg)
		if err != nil {
			b.Fatalf("degraded run failed hard: %v", err)
		}
		if len(res.Health().Degraded()) == 0 {
			b.Fatal("no degradation under full optional-stage faults")
		}
	}
}

// BenchmarkParallelPipeline measures the DAG-scheduled pipeline across
// parallelism levels on the default config; parallel=1 is the serial
// baseline the ISSUE-4 speedup criterion compares against. After the
// sweep it writes the speedup trajectory to BENCH_parallel.json (next to
// the BENCH_pipeline.json telemetry report) so CI can archive and diff
// the scaling curve per commit.
//
// Results key on (GOMAXPROCS, parallelism) with last-write-wins: under
// -cpu each sub-benchmark repeats per proc count, and with -benchtime=1x
// the first proc count reuses the run1 trial (golang.org/issue/32051),
// which executes at whatever GOMAXPROCS was ambient — keying on the
// procs actually observed keeps every row honest, and the measured rerun
// overwrites any trial taken at the wrong proc count. Run with
// -benchtime of at least 2x when sweeping -cpu so each proc count gets a
// real measurement.
func BenchmarkParallelPipeline(b *testing.B) {
	ctx := context.Background()
	type key struct{ procs, par int }
	type measure struct {
		nsPerOp     int64
		allocsPerOp int64
		bytesPerOp  int64
	}
	measures := make(map[key]measure)
	for _, par := range []int{1, 2, 4} {
		par := par
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			cfg := core.DefaultConfig()
			cfg.Parallelism = par
			b.ReportAllocs()
			// Process-wide allocation deltas around the timed loop; the
			// benchmark loop is the only allocator running, so the deltas
			// are this configuration's allocs/op and bytes/op (same
			// accounting -benchmem reports, but captured per row for the
			// JSON trajectory).
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			for i := 0; i < b.N; i++ {
				res, err := core.RunContext(ctx, cfg)
				if err != nil || res.Augmented.Len() == 0 {
					b.Fatalf("pipeline failed: %v", err)
				}
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			measures[key{runtime.GOMAXPROCS(0), par}] = measure{
				nsPerOp:     elapsed.Nanoseconds() / int64(b.N),
				allocsPerOp: int64(after.Mallocs-before.Mallocs) / int64(b.N),
				bytesPerOp:  int64(after.TotalAlloc-before.TotalAlloc) / int64(b.N),
			}
		})
	}
	if len(measures) == 0 {
		return
	}
	type row struct {
		Procs       int     `json:"procs"`
		Parallelism int     `json:"parallelism"`
		NsPerOp     int64   `json:"ns_per_op"`
		AllocsPerOp int64   `json:"allocs_per_op"`
		BytesPerOp  int64   `json:"bytes_per_op"`
		Speedup     float64 `json:"speedup_vs_serial"`
	}
	keys := make([]key, 0, len(measures))
	for k := range measures {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].procs != keys[j].procs {
			return keys[i].procs < keys[j].procs
		}
		return keys[i].par < keys[j].par
	})
	rows := make([]row, 0, len(keys))
	for _, k := range keys {
		m := measures[k]
		r := row{
			Procs: k.procs, Parallelism: k.par,
			NsPerOp: m.nsPerOp, AllocsPerOp: m.allocsPerOp, BytesPerOp: m.bytesPerOp,
		}
		if base := measures[key{k.procs, 1}].nsPerOp; base > 0 && r.NsPerOp > 0 {
			r.Speedup = float64(base) / float64(r.NsPerOp)
		}
		rows = append(rows, r)
	}
	out := struct {
		Rows []row `json:"rows"`
	}{Rows: rows}
	f, err := os.Create("BENCH_parallel.json")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		b.Fatal(err)
	}
}
