// Command akb drives the reproduction of "Generating Actionable Knowledge
// from Big Data" (SIGMOD'15 PhD Symposium): it regenerates every table of
// the paper over the synthetic substrates, runs the Figure-1 pipeline end to
// end, and executes the fusion comparisons and ablations described in
// DESIGN.md.
//
// Usage:
//
//	akb <command> [flags]
//
// Commands:
//
//	table1     Table 1 — statistics of representative KBs
//	table2     Table 2 — attribute extraction from existing KBs
//	table3     Table 3 — query-stream extraction (flag: -scale)
//	pipeline   Figure 1 — the full extraction+fusion pipeline (flag: -faults)
//	chaos      fault-injection sweep over the resilience supervisor
//	domsweep   Algorithm 1 behaviour sweep (sites, seeds, threshold)
//	fusion     fusion-method comparison on pipeline and copier workloads
//	ablation   design-choice ablations (hierarchy, correlation, confidence)
//	query      query the fused KB — single patterns or conjunctive datalog
//	           joins — against a snapshot, an inline pipeline run, or a
//	           live server (flags: -snapshot, -server, -explain)
//	serve      serve the fused KB over an HTTP query API (flag: -snapshot)
//	profile    run the pipeline under CPU+heap profiling; writes .pprof files
//	           plus a per-stage attribution table (flag: -out)
//	snapshot   verify / inspect / convert store snapshot files
//	           (subcommands: verify, info, convert)
//	loadtest   closed- or open-loop HTTP load generator against a running
//	           akb serve; writes latency percentiles, throughput and shed
//	           rate to BENCH_load.json
//	chaos-serve  drive the HTTP API under injected store faults and assert
//	             the robustness invariants (panic isolation, shedding,
//	             timeouts, reload-under-load)
//	export     run the pipeline and write the augmented KB as N-Triples
//	all        run every experiment in sequence
package main

import (
	"flag"
	"fmt"
	"os"
)

type command struct {
	name  string
	brief string
	run   func(args []string) error
}

func commands() []command {
	return []command{
		{"table1", "Table 1: statistics of representative KBs", cmdTable1},
		{"table2", "Table 2: attribute extraction from existing KBs", cmdTable2},
		{"table3", "Table 3: query-stream extraction results", cmdTable3},
		{"pipeline", "Figure 1: full extraction+fusion pipeline", cmdPipeline},
		{"report", "pretty-print a telemetry RunReport JSON", cmdReport},
		{"domsweep", "Algorithm 1 parameter sweep", cmdDOMSweep},
		{"fusion", "fusion method comparison", cmdFusion},
		{"ablation", "fusion design-choice ablations", cmdAblation},
		{"discover", "new entity creation vs KB coverage", cmdDiscover},
		{"calibration", "fused-belief calibration buckets", cmdCalibration},
		{"temporal", "temporal extraction and timeline fusion", cmdTemporal},
		{"granularity", "provenance granularity comparison", cmdGranularity},
		{"scale", "pipeline cost vs world size", cmdScale},
		{"chaos", "fault-injection sweep: degradation vs failure rate", cmdChaos},
		{"query", "query the fused KB: patterns and conjunctive datalog joins", cmdQuery},
		{"show", "print fused knowledge about one entity (deprecated: use akb query)", cmdShow},
		{"serve", "serve the fused KB over an HTTP query API", cmdServe},
		{"profile", "run the pipeline under CPU+heap profiling with per-stage attribution", cmdProfile},
		{"snapshot", "verify / inspect / convert store snapshot files", cmdSnapshot},
		{"loadtest", "drive a running akb serve with load; report latency percentiles and shed rate", cmdLoadtest},
		{"chaos-serve", "chaos harness for the serving path: inject faults, assert invariants", cmdChaosServe},
		{"export", "export the augmented KB as N-Triples", cmdExport},
		{"all", "run every experiment", cmdAll},
	}
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	name := os.Args[1]
	for _, c := range commands() {
		if c.name == name {
			if err := c.run(os.Args[2:]); err != nil {
				fmt.Fprintf(os.Stderr, "akb %s: %v\n", name, err)
				os.Exit(1)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "akb: unknown command %q\n\n", name)
	usage()
	os.Exit(2)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: akb <command> [flags]")
	fmt.Fprintln(os.Stderr, "\ncommands:")
	for _, c := range commands() {
		fmt.Fprintf(os.Stderr, "  %-10s %s\n", c.name, c.brief)
	}
}

// newFlagSet builds a flag set with the shared -seed flag.
func newFlagSet(name string) (*flag.FlagSet, *int64) {
	fs := flag.NewFlagSet(name, flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "random seed for the synthetic substrates")
	return fs, seed
}

func cmdAll(args []string) error {
	fmt.Println("=== E1: Table 1 ===")
	if err := cmdTable1(args); err != nil {
		return err
	}
	fmt.Println("\n=== E2: Table 2 ===")
	if err := cmdTable2(args); err != nil {
		return err
	}
	fmt.Println("\n=== E3: Table 3 ===")
	if err := cmdTable3(args); err != nil {
		return err
	}
	fmt.Println("\n=== E4: Figure 1 pipeline ===")
	if err := cmdPipeline(args); err != nil {
		return err
	}
	fmt.Println("\n=== E5: Algorithm 1 sweep ===")
	if err := cmdDOMSweep(args); err != nil {
		return err
	}
	fmt.Println("\n=== E6: fusion comparison ===")
	if err := cmdFusion(args); err != nil {
		return err
	}
	fmt.Println("\n=== E7: ablations ===")
	if err := cmdAblation(args); err != nil {
		return err
	}
	fmt.Println("\n=== E9: entity discovery ===")
	if err := cmdDiscover(args); err != nil {
		return err
	}
	fmt.Println("\n=== E10: belief calibration ===")
	if err := cmdCalibration(args); err != nil {
		return err
	}
	fmt.Println("\n=== E11: temporal knowledge ===")
	if err := cmdTemporal(args); err != nil {
		return err
	}
	fmt.Println("\n=== E13: provenance granularity ===")
	if err := cmdGranularity(args); err != nil {
		return err
	}
	fmt.Println("\n=== E14: scalability ===")
	return cmdScale(args)
}
