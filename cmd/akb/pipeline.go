package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"akb/internal/core"
	"akb/internal/eval"
	"akb/internal/experiments"
	"akb/internal/obs"
	"akb/internal/rdf"
	"akb/internal/resilience"
	"akb/internal/store"
)

func pipelineConfig(seed int64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.World.Seed = seed
	return cfg
}

// faultFlags registers the shared fault-injection flags and returns a
// builder that assembles the plan after parsing.
func faultFlags(fs *flag.FlagSet) func() (*resilience.FaultPlan, error) {
	spec := fs.String("faults", "", "fault plan: 'stage=prob' entries, e.g. 'extract/textx=1,discover=0.5' or 'all=0.3'")
	fseed := fs.Int64("fault-seed", 1, "seed for deterministic fault decisions")
	transient := fs.Bool("fault-transient", false, "injected faults are transient (retries may recover)")
	latency := fs.Duration("fault-latency", 0, "latency injected before each faulted stage attempt")
	return func() (*resilience.FaultPlan, error) {
		if *spec == "" {
			return nil, nil
		}
		plan, err := resilience.ParseFaultPlan(*spec, *fseed)
		if err != nil {
			return nil, err
		}
		plan.SetTransient(*transient).SetLatency(*latency)
		return plan, nil
	}
}

func cmdPipeline(args []string) error {
	fs, seed := newFlagSet("pipeline")
	alignOn := fs.Bool("align", false, "enable pre-fusion normalisation (synonyms, misspellings, sub-attributes)")
	discover := fs.Bool("discover", false, "enable joint entity linking and discovery")
	temporal := fs.Bool("temporal", false, "enable temporal extraction and timeline fusion")
	lists := fs.Bool("lists", false, "enable multi-record list-page extraction")
	parallel := fs.Int("parallel", 0, "run up to N independent stages concurrently on the DAG scheduler (0 or 1: serial); results are identical at any value")
	scale := fs.Int("scale", 1, "multiply substrate sizes (entities, pages, docs, query stream) by this factor; the fused KB grows roughly linearly")
	reportPath := fs.String("report", "", "write a machine-readable telemetry RunReport (spans, metrics, health) to this JSON file")
	snapPath := fs.String("snapshot", "", "write an indexed store snapshot of the fused KB to this file (servable with `akb serve -snapshot`)")
	buildFaults := faultFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := []core.Option{core.WithSeed(*seed)}
	if *scale > 1 {
		opts = append(opts, core.WithScale(*scale))
	}
	if *alignOn {
		opts = append(opts, core.WithAlignment())
	}
	if *discover {
		opts = append(opts, core.WithEntityDiscovery())
	}
	if *temporal {
		opts = append(opts, core.WithTemporal())
	}
	if *lists {
		opts = append(opts, core.WithListPages())
	}
	if *parallel != 0 {
		opts = append(opts, core.WithParallelism(*parallel))
	}
	plan, err := buildFaults()
	if err != nil {
		return err
	}
	if plan != nil {
		opts = append(opts, core.WithFaults(plan))
	}
	ctx := context.Background()
	var run *obs.Run
	if *reportPath != "" {
		run = obs.NewRun()
		ctx = obs.Into(ctx, run)
	}
	res, err := core.New(opts...).Run(ctx)
	if err != nil {
		return fmt.Errorf("pipeline aborted: %w", err)
	}
	rep := experiments.Summarize(res)
	if *snapPath != "" {
		st := store.FromResult(res)
		if err := st.WriteSnapshotFile(*snapPath); err != nil {
			return fmt.Errorf("write snapshot: %w", err)
		}
		defer fmt.Printf("\nSnapshot: %d facts, %d entities -> %s (serve with `akb serve -snapshot %s`)\n",
			st.Len(), st.EntityCount(), *snapPath, *snapPath)
	}
	if run != nil {
		rr, rerr := run.Report(rep.Health)
		if rerr != nil {
			return rerr
		}
		if werr := writeJSONFile(*reportPath, rr); werr != nil {
			return werr
		}
		defer fmt.Printf("\nRunReport: %d spans, %d metrics -> %s (render with `akb report %s`)\n",
			len(rr.Spans), len(rr.Metrics), *reportPath, *reportPath)
	}

	fmt.Println("Figure 1: knowledge extraction -> knowledge fusion -> KB augmentation")
	stageRows := make([][]string, 0, len(rep.Stages))
	for _, st := range rep.Stages {
		prec := "-"
		if st.Precision >= 0 {
			prec = fmt.Sprintf("%.3f", st.Precision)
		}
		stageRows = append(stageRows, []string{
			st.Stage, st.Detail, fmt.Sprintf("%d", st.Statements), prec, st.Health.String(),
		})
	}
	fmt.Print(eval.FormatTable([]string{"Stage", "Detail", "Statements", "Precision", "Health"}, stageRows))

	if plan != nil || !rep.Health.Healthy() {
		fmt.Printf("\nHealth: %s\n", rep.Health)
		if plan != nil {
			fmt.Printf("Fault plan: %s\n", plan)
		}
	}

	fmt.Println("\nAttribute-set growth per class (ontology augmentation):")
	growthRows := make([][]string, 0, len(rep.Growth))
	for _, g := range rep.Growth {
		growthRows = append(growthRows, []string{
			g.Class,
			fmt.Sprintf("%d", g.KBCombined),
			fmt.Sprintf("%d", g.WithQuery),
			fmt.Sprintf("%d", g.WithDOM),
			fmt.Sprintf("%d", g.WithText),
		})
	}
	fmt.Print(eval.FormatTable([]string{"Class", "KBs combined", "+query stream", "+DOM trees", "+Web text"}, growthRows))

	fmt.Printf("\nFused knowledge: %s\n", rep.Fusion)
	fmt.Printf("Augmented KB: %d accepted triples from %d raw statements\n",
		rep.AugmentedTriples, rep.TotalStatements)
	return nil
}

func cmdExport(args []string) error {
	fs, seed := newFlagSet("export")
	outPath := fs.String("o", "", "output file (default stdout)")
	quads := fs.Bool("quads", false, "export raw pre-fusion statements as provenance-preserving N-Quads instead of the fused KB")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := core.New(core.WithSeed(*seed)).Run(context.Background())
	if err != nil {
		return err
	}
	w := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *quads {
		if err := rdf.WriteNQuads(w, res.Statements); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "exported %d statements as N-Quads\n", len(res.Statements))
		return nil
	}
	if err := rdf.WriteNTriples(w, res.Augmented.All()); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "exported %d triples\n", res.Augmented.Len())
	return nil
}

// degradedSummary compresses a degraded-stage list for table cells.
func degradedSummary(stages []string) string {
	if len(stages) == 0 {
		return "-"
	}
	return strings.Join(stages, " ")
}

// writeJSONFile serialises v through the shared obs JSON exporter, so
// every artifact the CLI writes is stable and diffable.
func writeJSONFile(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return obs.WriteJSON(f, v)
}
