package main

import (
	"fmt"

	"akb/internal/eval"
	"akb/internal/experiments"
)

func cmdGranularity(args []string) error {
	fs, seed := newFlagSet("granularity")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows := experiments.Granularity(*seed)
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Granularity, r.Method,
			fmt.Sprintf("%.3f", r.P), fmt.Sprintf("%.3f", r.R), fmt.Sprintf("%.3f", r.F1),
		})
	}
	fmt.Println("Provenance granularity (extractors-as-sources vs per-source provenance):")
	fmt.Print(eval.FormatTable([]string{"Granularity", "Method", "Precision", "Recall", "F1"}, out))
	return nil
}
