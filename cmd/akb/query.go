package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"akb/internal/core"
	"akb/internal/datalog"
	"akb/internal/store"
)

// cmdQuery is the one query command over the fused KB: single patterns
// and multi-clause conjunctive datalog, against a snapshot file, an
// inline pipeline run, or a live `akb serve` over HTTP — same query
// language, same results, whichever backend answers.
//
//	akb query -attr director                           # single pattern
//	akb query '?f:Film director ?d . ?f award ?a'      # conjunctive join
//	akb query -snapshot kb.snap '?e "birth place" ?p'  # against a snapshot
//	akb query -server http://localhost:8080 '?e ?a ?v' # against a server
func cmdQuery(args []string) error {
	fs, seed := newFlagSet("query")
	snapPath := fs.String("snapshot", "", "query this snapshot file instead of running the pipeline")
	shards := fs.Int("shards", 0, "serving layout when loading: 0 keeps the snapshot's layout, 1 flat, N re-shards")
	server := fs.String("server", "", "query a running akb serve at this base URL (e.g. http://localhost:8080)")
	entity := fs.String("entity", "", "single-pattern mode: entity constant")
	attr := fs.String("attr", "", "single-pattern mode: attribute constant")
	value := fs.String("value", "", "single-pattern mode: value constant (hierarchical match)")
	class := fs.String("class", "", "single-pattern mode: restrict entities to this class")
	sel := fs.String("select", "", "comma-separated variables to project (default: all, in first-appearance order)")
	limit := fs.Int("limit", 0, "cap returned rows (0: no local cap; servers apply their own ceiling)")
	parallel := fs.Int("parallel", 1, "executor workers; results are identical at any value")
	naive := fs.Bool("naive", false, "execute clauses left-to-right instead of the greedy plan")
	explain := fs.Bool("explain", false, "print the chosen plan before the results")
	jsonOut := fs.Bool("json", false, "emit JSON instead of a table")
	if err := fs.Parse(args); err != nil {
		return err
	}
	text := strings.Join(fs.Args(), " ")
	patternMode := *entity != "" || *attr != "" || *value != "" || *class != ""
	if patternMode && text != "" {
		return fmt.Errorf("give either the pattern flags (-entity/-attr/-value/-class) or a datalog query, not both")
	}
	if !patternMode && text == "" {
		return fmt.Errorf("nothing to ask: pass a datalog query (e.g. '?f director ?d . ?f award ?a') or pattern flags; see akb query -h")
	}
	if *limit < 0 {
		return fmt.Errorf("-limit %d is negative", *limit)
	}
	var selected []string
	if *sel != "" {
		for _, v := range strings.Split(*sel, ",") {
			selected = append(selected, strings.TrimSpace(strings.TrimPrefix(v, "?")))
		}
	}

	// Remote single-pattern queries ride the plain /v1/query URL form;
	// everything else speaks /v1/datalog.
	if *server != "" {
		if patternMode {
			return queryServerPattern(*server, store.Pattern{
				Entity: *entity, Attr: *attr, Value: *value, Class: *class,
			}, *limit, *jsonOut)
		}
		return queryServerDatalog(*server, text, selected, *limit, *parallel, *explain, *jsonOut)
	}

	// Local: snapshot, or an inline pipeline run.
	var src store.Querier
	if *snapPath != "" {
		q, info, err := store.OpenSnapshotFile(*snapPath, *shards)
		if err != nil {
			return err
		}
		src = q
		fmt.Fprintf(os.Stderr, "loaded snapshot %s (%s v%d): %d facts, %s\n",
			*snapPath, info.Codec, info.Version, q.Len(), shardLayout(q))
	} else {
		fmt.Fprintf(os.Stderr, "no -snapshot given; running pipeline (seed %d) ...\n", *seed)
		res, err := core.New(core.WithSeed(*seed)).Run(context.Background())
		if err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
		if *shards > 1 {
			src = store.ShardedFromResult(res, *shards)
		} else {
			src = store.FromResult(res)
		}
	}

	q, err := localQuery(patternMode, *entity, *attr, *value, *class, text)
	if err != nil {
		return err
	}
	q.Select = selected
	q.Limit = *limit

	var plan *datalog.Plan
	if *naive {
		plan, err = datalog.NaivePlan(q, src)
	} else {
		plan, err = datalog.PlanQuery(q, src)
	}
	if err != nil {
		return err
	}
	if *explain {
		fmt.Fprintf(os.Stderr, "plan for %s:\n%s", q, plan)
	}
	res, err := datalog.RunPlan(context.Background(), src, q, plan, datalog.Options{Parallelism: *parallel})
	if err != nil {
		return err
	}
	if *jsonOut {
		return printJSON(map[string]any{
			"query": q.String(), "vars": res.Vars, "count": len(res.Rows),
			"total": res.Total, "truncated": res.Truncated, "rows": res.Rows,
		})
	}
	printRows(varHeaders(res.Vars), res.Rows)
	fmt.Printf("%d rows", len(res.Rows))
	if res.Truncated {
		fmt.Printf(" (of %d total, truncated)", res.Total)
	}
	fmt.Printf("; %d index probes\n", res.Probes)
	return nil
}

// localQuery builds the datalog query for local execution: the pattern
// flags become a single clause with fresh variables in the open
// positions — the unified-API point that a pattern IS a one-clause
// query.
func localQuery(patternMode bool, entity, attr, value, class, text string) (datalog.Query, error) {
	if !patternMode {
		return datalog.Parse(text)
	}
	term := func(konst, varname string) datalog.Term {
		if konst != "" {
			return datalog.C(konst)
		}
		return datalog.V(varname)
	}
	return datalog.Query{Clauses: []datalog.Clause{{
		Entity: term(entity, "e"),
		Attr:   term(attr, "a"),
		Value:  term(value, "v"),
		Class:  class,
	}}}, nil
}

func httpClient() *http.Client { return &http.Client{Timeout: 30 * time.Second} }

// queryServerPattern drives GET /v1/query and renders the fact list.
func queryServerPattern(base string, p store.Pattern, limit int, jsonOut bool) error {
	params := url.Values{}
	for k, v := range map[string]string{"entity": p.Entity, "attr": p.Attr, "value": p.Value, "class": p.Class} {
		if v != "" {
			params.Set(k, v)
		}
	}
	if limit > 0 {
		params.Set("limit", fmt.Sprint(limit))
	}
	body, err := doRequest(func() (*http.Response, error) {
		return httpClient().Get(strings.TrimRight(base, "/") + "/v1/query?" + params.Encode())
	})
	if err != nil {
		return err
	}
	if jsonOut {
		return printJSON(body)
	}
	facts, _ := body["facts"].([]any)
	rows := make([][]string, 0, len(facts))
	for _, f := range facts {
		m, _ := f.(map[string]any)
		rows = append(rows, []string{
			str(m["entity"]), str(m["attr"]), str(m["value"]), fmt.Sprintf("%.2f", num(m["confidence"])),
		})
	}
	printRows([]string{"entity", "attr", "value", "confidence"}, rows)
	fmt.Printf("%d facts (total %v)\n", len(rows), body["total"])
	return nil
}

// queryServerDatalog drives POST /v1/datalog and renders the bindings.
func queryServerDatalog(base, text string, sel []string, limit, parallel int, explain, jsonOut bool) error {
	req := map[string]any{"query": text}
	if len(sel) > 0 {
		req["select"] = sel
	}
	if limit > 0 {
		req["limit"] = limit
	}
	if parallel > 1 {
		req["parallelism"] = parallel
	}
	if explain {
		req["explain"] = true
	}
	payload, err := json.Marshal(req)
	if err != nil {
		return err
	}
	body, err := doRequest(func() (*http.Response, error) {
		return httpClient().Post(strings.TrimRight(base, "/")+"/v1/datalog", "application/json", bytes.NewReader(payload))
	})
	if err != nil {
		return err
	}
	if jsonOut {
		return printJSON(body)
	}
	if plan, ok := body["plan"].([]any); ok {
		fmt.Fprintf(os.Stderr, "plan for %v:\n", body["query"])
		for _, step := range plan {
			fmt.Fprintf(os.Stderr, "%s\n", str(step))
		}
	}
	varsAny, _ := body["vars"].([]any)
	vars := make([]string, 0, len(varsAny))
	for _, v := range varsAny {
		vars = append(vars, str(v))
	}
	bindings, _ := body["bindings"].([]any)
	rows := make([][]string, 0, len(bindings))
	for _, b := range bindings {
		m, _ := b.(map[string]any)
		row := make([]string, len(vars))
		for i, v := range vars {
			row[i] = str(m[v])
		}
		rows = append(rows, row)
	}
	printRows(varHeaders(vars), rows)
	fmt.Printf("%d rows (total %v", len(rows), body["total"])
	if t, _ := body["truncated"].(bool); t {
		fmt.Printf(", truncated")
	}
	fmt.Println(")")
	return nil
}

// doRequest runs one API call and decodes the JSON body, turning the
// error envelope of a non-2xx response into a CLI error.
func doRequest(do func() (*http.Response, error)) (map[string]any, error) {
	resp, err := do()
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	var body map[string]any
	if err := json.Unmarshal(raw, &body); err != nil {
		return nil, fmt.Errorf("server returned %s with a non-JSON body: %.200s", resp.Status, raw)
	}
	if resp.StatusCode != http.StatusOK {
		if msg, ok := body["error"].(string); ok {
			return nil, fmt.Errorf("server: %s (status %d)", msg, resp.StatusCode)
		}
		return nil, fmt.Errorf("server returned %s: %.200s", resp.Status, raw)
	}
	return body, nil
}

// varHeaders renders variable names as surface-grammar column heads.
func varHeaders(vars []string) []string {
	out := make([]string, len(vars))
	for i, v := range vars {
		out[i] = "?" + v
	}
	return out
}

// printRows renders an aligned table, one row per binding.
func printRows(header []string, rows [][]string) {
	if len(header) == 0 {
		return
	}
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", width[i], c)
		}
		fmt.Println(strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func str(v any) string {
	if s, ok := v.(string); ok {
		return s
	}
	return fmt.Sprint(v)
}

func num(v any) float64 {
	f, _ := v.(float64)
	return f
}
