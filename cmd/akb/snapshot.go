package main

import (
	"flag"
	"fmt"

	"akb/internal/store"
)

// cmdSnapshot inspects and migrates store snapshot files. Subcommands:
//
//	akb snapshot verify <file>...   integrity-check header, count, checksum
//	akb snapshot info   <file>...   like verify, but keeps going and prints a row per file
//	akb snapshot convert -o <out> [-to v3|v2] [-shards N] <file>
//	                                re-encode a snapshot in another codec
//
// verify exits non-zero on the first bad file, which makes it usable as
// a deploy gate: `akb snapshot verify kb.akb && akb serve -snapshot kb.akb`.
// info and verify print the same uniform description for every codec
// version: codec, version, fact count, shard count, checksum status.
func cmdSnapshot(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: akb snapshot verify|info|convert ...")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "verify", "info":
		if len(rest) == 0 {
			return fmt.Errorf("akb snapshot %s: no snapshot files given", sub)
		}
		bad := 0
		for _, path := range rest {
			info, err := store.VerifySnapshotFile(path)
			if err != nil {
				if sub == "verify" {
					return fmt.Errorf("verify: %w", err)
				}
				bad++
				fmt.Printf("%s: CORRUPT: %v\n", path, err)
				continue
			}
			fmt.Printf("%s: %s\n", path, describeSnapshot(info))
		}
		if bad > 0 {
			return fmt.Errorf("%d of %d snapshot(s) failed verification", bad, len(rest))
		}
		return nil
	case "convert":
		return snapshotConvert(rest)
	default:
		return fmt.Errorf("akb snapshot: unknown subcommand %q (want verify, info or convert)", sub)
	}
}

// describeSnapshot renders one uniform row for any codec version, e.g.
//
//	codec=binary version=3 facts=3184 shards=8 checksum=verified
func describeSnapshot(info store.SnapshotInfo) string {
	return fmt.Sprintf("codec=%s version=%d facts=%d shards=%d checksum=%s",
		info.Codec, info.Version, info.Facts, info.Shards, info.ChecksumStatus())
}

// snapshotConvert re-encodes a snapshot, migrating between the JSON (v2)
// and binary (v3) codecs. -shards only matters for binary output, where
// it fixes the stored segment layout (0 keeps the source layout for
// binary inputs, or DefaultShards for JSON ones).
func snapshotConvert(args []string) error {
	fs := flag.NewFlagSet("snapshot convert", flag.ContinueOnError)
	out := fs.String("o", "", "output snapshot path (required)")
	to := fs.String("to", "v3", "target codec: v3 (binary, sharded) or v2 (JSON)")
	shards := fs.Int("shards", 0, "shard count for binary output: 0 keeps the source layout (8 for JSON sources)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *out == "" || fs.NArg() != 1 {
		return fmt.Errorf("usage: akb snapshot convert -o <out> [-to v3|v2] [-shards N] <file>")
	}
	in := fs.Arg(0)
	src, info, err := store.OpenSnapshotFile(in, *shards)
	if err != nil {
		return fmt.Errorf("convert: %w", err)
	}
	fmt.Printf("%s: %s\n", in, describeSnapshot(info))
	switch *to {
	case "v3", "binary":
		var sh *store.Sharded
		if got, ok := src.(*store.Sharded); ok {
			sh = got
		} else {
			n := *shards
			if n <= 0 {
				n = store.DefaultShards
			}
			sh = store.NewSharded(src.(*store.Store).Facts(), n)
		}
		if err := sh.WriteBinarySnapshotFile(*out); err != nil {
			return fmt.Errorf("convert: %w", err)
		}
	case "v2", "json":
		var flat *store.Store
		if sh, ok := src.(*store.Sharded); ok {
			flat = sh.Flatten()
		} else {
			flat = src.(*store.Store)
		}
		if err := flat.WriteSnapshotFile(*out); err != nil {
			return fmt.Errorf("convert: %w", err)
		}
	default:
		return fmt.Errorf("akb snapshot convert: unknown target codec %q (want v3 or v2)", *to)
	}
	outInfo, err := store.VerifySnapshotFile(*out)
	if err != nil {
		return fmt.Errorf("convert: wrote %s but it fails verification: %w", *out, err)
	}
	fmt.Printf("%s: %s\n", *out, describeSnapshot(outInfo))
	return nil
}
