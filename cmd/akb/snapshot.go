package main

import (
	"fmt"

	"akb/internal/store"
)

// cmdSnapshot inspects store snapshot files. Subcommands:
//
//	akb snapshot verify <file>...   integrity-check header, count, checksum
//	akb snapshot info   <file>...   like verify, but keeps going and prints a row per file
//
// verify exits non-zero on the first bad file, which makes it usable as
// a deploy gate: `akb snapshot verify kb.akb && akb serve -snapshot kb.akb`.
func cmdSnapshot(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: akb snapshot verify|info <file>...")
	}
	sub, files := args[0], args[1:]
	if len(files) == 0 {
		return fmt.Errorf("akb snapshot %s: no snapshot files given", sub)
	}
	switch sub {
	case "verify":
		for _, path := range files {
			info, err := store.VerifySnapshotFile(path)
			if err != nil {
				return fmt.Errorf("verify: %w", err)
			}
			fmt.Printf("%s: OK (version %d, %d facts, %s)\n", path, info.Version, info.Facts, checksumOrNone(info))
		}
		return nil
	case "info":
		bad := 0
		for _, path := range files {
			info, err := store.VerifySnapshotFile(path)
			if err != nil {
				bad++
				fmt.Printf("%s: CORRUPT: %v\n", path, err)
				continue
			}
			fmt.Printf("%s: version %d, %d facts, %s\n", path, info.Version, info.Facts, checksumOrNone(info))
		}
		if bad > 0 {
			return fmt.Errorf("%d of %d snapshot(s) failed verification", bad, len(files))
		}
		return nil
	default:
		return fmt.Errorf("akb snapshot: unknown subcommand %q (want verify or info)", sub)
	}
}

func checksumOrNone(info store.SnapshotInfo) string {
	if info.Checksum == "" {
		return "no checksum (v1)"
	}
	return info.Checksum
}
