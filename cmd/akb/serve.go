package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"akb/internal/core"
	"akb/internal/obs"
	"akb/internal/serve"
	"akb/internal/store"
)

// cmdServe exposes the fused KB over HTTP. It either loads a snapshot
// written by `akb pipeline -snapshot` or, without one, runs the pipeline
// inline and serves the fresh result.
func cmdServe(args []string) error {
	fs, seed := newFlagSet("serve")
	snapPath := fs.String("snapshot", "", "serve this snapshot file instead of running the pipeline")
	addr := fs.String("addr", ":8080", "listen address")
	maxInflight := fs.Int("max-inflight", 64, "maximum concurrent requests before shedding with 429")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request timeout (503 on expiry)")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown drain window on SIGTERM/SIGINT")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var st *store.Store
	if *snapPath != "" {
		var err error
		if st, err = store.ReadSnapshotFile(*snapPath); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loaded snapshot %s: %d facts, %d entities, %d classes\n",
			*snapPath, st.Len(), st.EntityCount(), len(st.Classes()))
	} else {
		fmt.Fprintf(os.Stderr, "no -snapshot given; running pipeline (seed %d) ...\n", *seed)
		res, err := core.New(core.WithSeed(*seed)).Run(context.Background())
		if err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
		st = store.FromResult(res)
		fmt.Fprintf(os.Stderr, "pipeline done: serving %d facts, %d entities\n", st.Len(), st.EntityCount())
	}

	cfg := serve.DefaultConfig()
	cfg.Addr = *addr
	cfg.MaxInFlight = *maxInflight
	cfg.RequestTimeout = *timeout
	cfg.DrainTimeout = *drain

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	srv := serve.New(st, obs.NewRegistry(), cfg)
	fmt.Fprintf(os.Stderr, "listening on %s (GET /healthz, /metrics, /v1/entity/{id}, /v1/triples/{entity}/{attr}, /v1/query)\n", cfg.Addr)
	if err := srv.ListenAndServe(ctx); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "drained, bye")
	return nil
}
