package main

import (
	"context"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"akb/internal/core"
	"akb/internal/obs"
	"akb/internal/obs/logx"
	"akb/internal/resilience"
	"akb/internal/serve"
	"akb/internal/store"
)

// cmdServe exposes the fused KB over HTTP. It either loads a snapshot
// written by `akb pipeline -snapshot` or, without one, runs the pipeline
// inline and serves the fresh result.
//
// Snapshot-backed servers hot-reload: SIGHUP or POST /v1/admin/reload
// re-reads the snapshot off the serving path and swaps it in atomically;
// a bad replacement (missing, corrupt, empty) leaves the old store
// serving and /healthz reporting degraded.
//
// The -chaos-* flags wrap the store with deterministic fault injection
// (internal/resilience.FaultPlan aimed at store reads) so the serving
// path's robustness — panic isolation, timeouts, shedding — can be
// exercised on a live process; see also `akb chaos-serve` for the
// self-checking harness.
// shardLayout renders a querier's serving layout for startup logs.
func shardLayout(q store.Querier) string {
	if sh, ok := q.(interface{ ShardCount() int }); ok {
		return fmt.Sprintf("%d shards", sh.ShardCount())
	}
	return "1 flat store"
}

func cmdServe(args []string) error {
	fs, seed := newFlagSet("serve")
	snapPath := fs.String("snapshot", "", "serve this snapshot file instead of running the pipeline")
	shards := fs.Int("shards", 0, "serving shard count: 0 keeps a binary snapshot's stored layout (JSON snapshots shard to 8), 1 forces one flat store, N re-shards")
	addr := fs.String("addr", ":8080", "listen address")
	maxInflight := fs.Int("max-inflight", 64, "maximum concurrent requests before shedding with 429")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request timeout (503 on expiry)")
	drain := fs.Duration("drain", 10*time.Second, "graceful shutdown drain window on SIGTERM/SIGINT")
	chaosFail := fs.Float64("chaos-fail", 0, "per-read probability of an injected store panic (0 disables chaos)")
	chaosLatency := fs.Duration("chaos-latency", 0, "injected latency on every chaos-faulted store read")
	chaosSeed := fs.Int64("chaos-seed", 1, "seed for deterministic chaos decisions")
	pprofAddr := fs.String("pprof", "", "serve net/http/pprof on this separate admin address (e.g. 127.0.0.1:6060; empty disables)")
	accessLog := fs.String("access-log", "stderr", "structured access-log destination: stderr, off, or a file path")
	logLevel := fs.String("log-level", "info", "minimum access-log level (debug, info, warn, error)")
	traceCap := fs.Int("trace-cap", 4096, "max request spans retained in the in-process trace (0: unlimited)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chaosFail < 0 || *chaosFail > 1 {
		return fmt.Errorf("-chaos-fail %v outside [0,1]", *chaosFail)
	}
	level, err := logx.ParseLevel(*logLevel)
	if err != nil {
		return err
	}

	cfg := serve.DefaultConfig()
	cfg.Addr = *addr
	cfg.MaxInFlight = *maxInflight
	cfg.RequestTimeout = *timeout
	cfg.DrainTimeout = *drain

	// One telemetry run for the process: request spans (capped so the
	// trace cannot grow without bound), serve metrics, and — via the
	// shared registry — the /metrics exposition in both formats.
	run := obs.NewRun()
	run.Trace().SetLimit(*traceCap)
	cfg.Obs = run

	switch *accessLog {
	case "off", "":
		// no access log
	case "stderr":
		cfg.AccessLog = logx.New(os.Stderr, logx.WithLevel(level))
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("open access log: %w", err)
		}
		defer f.Close()
		cfg.AccessLog = logx.New(f, logx.WithLevel(level))
	}

	var st store.Querier
	if *snapPath != "" {
		q, info, err := store.OpenSnapshotFile(*snapPath, *shards)
		if err != nil {
			return err
		}
		st = q
		fmt.Fprintf(os.Stderr, "loaded snapshot %s (%s v%d): %d facts, %d entities, %d classes, serving %s\n",
			*snapPath, info.Codec, info.Version, st.Len(), st.EntityCount(), len(st.Classes()), shardLayout(st))
		path, n := *snapPath, *shards
		cfg.Reloader = func() (store.Querier, error) {
			q, _, err := store.OpenSnapshotFile(path, n)
			return q, err
		}
	} else {
		fmt.Fprintf(os.Stderr, "no -snapshot given; running pipeline (seed %d) ...\n", *seed)
		res, err := core.New(core.WithSeed(*seed)).Run(context.Background())
		if err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
		n := *shards
		if n == 0 {
			n = store.DefaultShards
		}
		if n > 1 {
			st = store.ShardedFromResult(res, n)
		} else {
			st = store.FromResult(res)
		}
		fmt.Fprintf(os.Stderr, "pipeline done: serving %d facts, %d entities as %s (no snapshot: hot reload disabled)\n",
			st.Len(), st.EntityCount(), shardLayout(st))
	}

	if *chaosFail > 0 || *chaosLatency > 0 {
		plan := &resilience.FaultPlan{
			Seed:    *chaosSeed,
			Default: resilience.StageFault{FailProb: *chaosFail, Transient: true, Latency: *chaosLatency},
		}
		ctl := store.NewChaosController(plan)
		cfg.WrapQuerier = ctl.Wrap
		fmt.Fprintf(os.Stderr, "CHAOS MODE: injecting store faults (%s) — 500s are expected, the process dying is not\n", plan)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	srv := serve.New(st, run.Registry(), cfg)

	// Opt-in profiling: pprof lives on its own admin listener, never the
	// query port.
	if *pprofAddr != "" {
		admin := &http.Server{Addr: *pprofAddr, Handler: serve.AdminHandler(), ReadHeaderTimeout: 5 * time.Second}
		go func() {
			fmt.Fprintf(os.Stderr, "pprof admin mux on http://%s/debug/pprof/\n", *pprofAddr)
			if err := admin.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "pprof admin mux: %v\n", err)
			}
		}()
		defer admin.Close()
	}

	// SIGHUP = operator asked for a zero-downtime snapshot reload.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	defer signal.Stop(hup)
	go func() {
		for range hup {
			if info, err := srv.Reload(); err != nil {
				fmt.Fprintf(os.Stderr, "reload failed (still serving generation %d): %v\n", srv.Generation(), err)
			} else {
				fmt.Fprintf(os.Stderr, "reloaded: generation %d, %d facts, %d entities\n",
					info.Generation, info.Facts, info.Entities)
			}
		}
	}()

	fmt.Fprintf(os.Stderr, "listening on %s (GET /healthz, /readyz, /metrics [?format=prom], /v1/entity/{id}, /v1/triples/{entity}/{attr}, /v1/query; POST /v1/datalog, /v1/admin/reload; SIGHUP reloads)\n", cfg.Addr)
	if err := srv.ListenAndServe(ctx); err != nil {
		return err
	}
	fmt.Fprintln(os.Stderr, "drained, bye")
	return nil
}
