package main

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"akb/internal/core"
	"akb/internal/eval"
	"akb/internal/experiments"
	"akb/internal/resilience"
)

// cmdChaos sweeps per-stage failure probabilities over the resilience
// harness and prints a degradation table: how many stages failed soft at
// each rate and how much fusion precision the surviving stages retained.
// Every run is deterministic in (-seed, -fault-seed, rate).
func cmdChaos(args []string) error {
	fs, seed := newFlagSet("chaos")
	rates := fs.String("rates", "0,0.25,0.5,0.75,1", "comma-separated per-attempt failure probabilities to sweep")
	targets := fs.String("stages", "optional", "fault targets: 'optional', 'all', or comma-separated stage names")
	transient := fs.Bool("transient", false, "injected faults are transient (retries can recover them)")
	retries := fs.Int("retries", 1, "attempt budget per stage (>1 lets transient faults recover)")
	fseed := fs.Int64("fault-seed", 1, "seed for deterministic fault decisions")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var stages []string
	switch *targets {
	case "optional":
		stages = core.OptionalStageNames()
	case "all":
		stages = append(core.MandatoryStageNames(), core.OptionalStageNames()...)
	default:
		for _, s := range strings.Split(*targets, ",") {
			if s = strings.TrimSpace(s); s != "" {
				stages = append(stages, s)
			}
		}
	}
	if len(stages) == 0 {
		return fmt.Errorf("no fault target stages")
	}

	fmt.Printf("Chaos sweep over %d stage(s): %s\n", len(stages), strings.Join(stages, ", "))
	fmt.Printf("faults: transient=%v retries=%d fault-seed=%d\n\n", *transient, *retries, *fseed)

	rows := make([][]string, 0)
	for _, rs := range strings.Split(*rates, ",") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		rate, err := strconv.ParseFloat(rs, 64)
		if err != nil || rate < 0 || rate > 1 {
			return fmt.Errorf("bad rate %q: want a probability in [0,1]", rs)
		}
		plan := &resilience.FaultPlan{Seed: *fseed, Stages: map[string]resilience.StageFault{}}
		for _, st := range stages {
			plan.Stages[st] = resilience.StageFault{FailProb: rate, Transient: *transient}
		}
		cfg := pipelineConfig(*seed)
		// Exercise every optional stage so the degradation surface is full.
		cfg.ListPages = true
		cfg.Temporal = true
		cfg.DiscoverEntities = true
		cfg.Align = true
		cfg.Faults = plan
		// Backoff without sleeping: the sweep measures degradation, not
		// wall-clock recovery.
		cfg.Retry = resilience.RetryPolicy{MaxAttempts: *retries}

		rep, err := experiments.PipelineContext(context.Background(), cfg)
		if err != nil {
			rows = append(rows, []string{
				fmt.Sprintf("%.2f", rate), "-", "pipeline failed: " + firstLine(err.Error()), "-", "-", "-",
			})
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", rate),
			fmt.Sprintf("%d/%d", len(rep.Degraded), len(rep.Health.Stages)),
			degradedSummary(rep.Degraded),
			fmt.Sprintf("%d", rep.TotalStatements),
			fmt.Sprintf("%.3f", rep.Fusion.Precision()),
			fmt.Sprintf("%d", rep.AugmentedTriples),
		})
	}
	fmt.Print(eval.FormatTable(
		[]string{"Fail rate", "Degraded", "Stages failed", "Statements", "Fusion prec", "Augmented"}, rows))
	fmt.Println("\nMandatory stages (substrates, extract/kbx, fusion, augment) abort the run when faulted;")
	fmt.Println("optional stages degrade it: fusion proceeds on whatever the surviving extractors produced.")
	return nil
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
