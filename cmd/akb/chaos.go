package main

import (
	"context"
	"fmt"
	"strconv"
	"strings"

	"akb/internal/core"
	"akb/internal/eval"
	"akb/internal/experiments"
	"akb/internal/resilience"
)

// cmdChaos sweeps per-stage failure probabilities over the resilience
// harness and prints a degradation table: how many stages failed soft at
// each rate and how much fusion precision the surviving stages retained.
// Every run is deterministic in (-seed, -fault-seed, rate).
func cmdChaos(args []string) error {
	fs, seed := newFlagSet("chaos")
	rates := fs.String("rates", "0,0.25,0.5,0.75,1", "comma-separated per-attempt failure probabilities to sweep")
	targets := fs.String("stages", "optional", "fault targets: 'optional', 'all', or comma-separated stage names")
	transient := fs.Bool("transient", false, "injected faults are transient (retries can recover them)")
	retries := fs.Int("retries", 1, "attempt budget per stage (>1 lets transient faults recover)")
	fseed := fs.Int64("fault-seed", 1, "seed for deterministic fault decisions")
	outPath := fs.String("out", "", "also write the sweep as stable JSON to this file (diffable across PRs)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var stages []string
	switch *targets {
	case "optional":
		stages = core.OptionalStageNames()
	case "all":
		stages = append(core.MandatoryStageNames(), core.OptionalStageNames()...)
	default:
		for _, s := range strings.Split(*targets, ",") {
			if s = strings.TrimSpace(s); s != "" {
				stages = append(stages, s)
			}
		}
	}
	if len(stages) == 0 {
		return fmt.Errorf("no fault target stages")
	}

	fmt.Printf("Chaos sweep over %d stage(s): %s\n", len(stages), strings.Join(stages, ", "))
	fmt.Printf("faults: transient=%v retries=%d fault-seed=%d\n\n", *transient, *retries, *fseed)

	sweep := chaosSweep{
		Targets: stages, Transient: *transient, Retries: *retries,
		Seed: *seed, FaultSeed: *fseed,
	}
	rows := make([][]string, 0)
	for _, rs := range strings.Split(*rates, ",") {
		rs = strings.TrimSpace(rs)
		if rs == "" {
			continue
		}
		rate, err := strconv.ParseFloat(rs, 64)
		if err != nil || rate < 0 || rate > 1 {
			return fmt.Errorf("bad rate %q: want a probability in [0,1]", rs)
		}
		plan := &resilience.FaultPlan{Seed: *fseed, Stages: map[string]resilience.StageFault{}}
		for _, st := range stages {
			plan.Stages[st] = resilience.StageFault{FailProb: rate, Transient: *transient}
		}
		cfg := pipelineConfig(*seed)
		// Exercise every optional stage so the degradation surface is full.
		cfg.ListPages = true
		cfg.Temporal = true
		cfg.DiscoverEntities = true
		cfg.Align = true
		cfg.Faults = plan
		// Backoff without sleeping: the sweep measures degradation, not
		// wall-clock recovery.
		cfg.Retry = resilience.RetryPolicy{MaxAttempts: *retries}

		rep, err := experiments.PipelineContext(context.Background(), cfg)
		if err != nil {
			rows = append(rows, []string{
				fmt.Sprintf("%.2f", rate), "-", "pipeline failed: " + firstLine(err.Error()), "-", "-", "-",
			})
			sweep.Rows = append(sweep.Rows, chaosRow{Rate: rate, Failed: firstLine(err.Error())})
			continue
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", rate),
			fmt.Sprintf("%d/%d", len(rep.Degraded), len(rep.Health.Stages)),
			degradedSummary(rep.Degraded),
			fmt.Sprintf("%d", rep.TotalStatements),
			fmt.Sprintf("%.3f", rep.Fusion.Precision()),
			fmt.Sprintf("%d", rep.AugmentedTriples),
		})
		sweep.Rows = append(sweep.Rows, chaosRow{
			Rate:             rate,
			Degraded:         rep.Degraded,
			SupervisedStages: len(rep.Health.Stages),
			Statements:       rep.TotalStatements,
			FusionPrecision:  rep.Fusion.Precision(),
			AugmentedTriples: rep.AugmentedTriples,
			Health:           rep.Health,
		})
	}
	fmt.Print(eval.FormatTable(
		[]string{"Fail rate", "Degraded", "Stages failed", "Statements", "Fusion prec", "Augmented"}, rows))
	fmt.Println("\nMandatory stages (the substrates/* generators, seeds, union, extract/kbx, fusion, augment) abort the run when faulted;")
	fmt.Println("optional stages degrade it: fusion proceeds on whatever the surviving extractors produced.")
	if *outPath != "" {
		if err := writeJSONFile(*outPath, sweep); err != nil {
			return err
		}
		fmt.Printf("\nsweep written to %s\n", *outPath)
	}
	return nil
}

// chaosSweep is the machine-readable form of one degradation sweep. Every
// field is deterministic in (seed, fault-seed, rates), so two sweeps of
// the same code diff clean and behaviour changes show up in review.
type chaosSweep struct {
	Targets   []string   `json:"targets"`
	Transient bool       `json:"transient"`
	Retries   int        `json:"retries"`
	Seed      int64      `json:"seed"`
	FaultSeed int64      `json:"fault_seed"`
	Rows      []chaosRow `json:"rows"`
}

// chaosRow is one failure-rate point of the sweep.
type chaosRow struct {
	Rate             float64           `json:"rate"`
	Degraded         []string          `json:"degraded,omitempty"`
	SupervisedStages int               `json:"supervised_stages,omitempty"`
	Statements       int               `json:"statements,omitempty"`
	FusionPrecision  float64           `json:"fusion_precision,omitempty"`
	AugmentedTriples int               `json:"augmented_triples,omitempty"`
	Health           core.HealthReport `json:"health,omitempty"`
	// Failed carries the abort error when a mandatory stage was hit.
	Failed string `json:"failed,omitempty"`
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
