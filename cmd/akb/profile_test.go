package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"akb/internal/obs"
)

// TestProfileAttribution folds a hand-built RunReport and checks the
// per-stage totals, shares, ordering and statement extraction.
func TestProfileAttribution(t *testing.T) {
	rr := &obs.RunReport{Spans: []obs.SpanReport{
		// Two runs of "extract": 300ns total across 2 spans, statements
		// on a child attempt span.
		{ID: 1, Name: "extract", DurationNS: 100},
		{ID: 2, Parent: 1, Name: "attempt", DurationNS: 90, Attrs: map[string]string{"statements": "40"}},
		{ID: 3, Name: "extract", DurationNS: 200},
		{ID: 4, Parent: 3, Name: "attempt", DurationNS: 190, Attrs: map[string]string{"statements": "42"}},
		// One "fuse" run, statements on the stage span itself.
		{ID: 5, Name: "fuse", DurationNS: 700, Attrs: map[string]string{"statements": "7"}},
		// A stage with no statements annotation at all.
		{ID: 6, Name: "load", DurationNS: 700},
	}}

	costs := profileAttribution(rr)
	if len(costs) != 3 {
		t.Fatalf("got %d stages, want 3: %+v", len(costs), costs)
	}
	// Sorted by descending duration, ties by name: fuse=700, load=700, extract=300.
	wantOrder := []string{"fuse", "load", "extract"}
	for i, name := range wantOrder {
		if costs[i].Stage != name {
			t.Fatalf("order[%d] = %q, want %q (all: %+v)", i, costs[i].Stage, name, costs)
		}
	}
	ex := costs[2]
	if ex.DurationNS != 300 || ex.Spans != 2 {
		t.Errorf("extract = %+v, want 300ns over 2 spans", ex)
	}
	if ex.Statements != 42 {
		t.Errorf("extract statements = %d, want 42 (latest attempt wins)", ex.Statements)
	}
	if costs[0].Statements != 7 {
		t.Errorf("fuse statements = %d, want 7", costs[0].Statements)
	}
	if costs[1].Statements != 0 {
		t.Errorf("load statements = %d, want 0 (none annotated)", costs[1].Statements)
	}
	var total float64
	for _, c := range costs {
		total += c.Share
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("shares sum to %v, want 1", total)
	}
	// 300/1700 for extract.
	if got, want := ex.Share, 300.0/1700.0; got != want {
		t.Errorf("extract share = %v, want %v", got, want)
	}
}

func TestProfileAttributionEmpty(t *testing.T) {
	if costs := profileAttribution(&obs.RunReport{}); len(costs) != 0 {
		t.Errorf("empty report produced %+v", costs)
	}
	if rows := attributionRows(nil); len(rows) != 0 {
		t.Errorf("nil costs produced rows %v", rows)
	}
}

// TestProfileCommand runs akb profile end to end and checks the three
// artifacts exist and the attribution covers the pipeline stages.
func TestProfileCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("profiled pipeline run in -short")
	}
	dir := filepath.Join(t.TempDir(), "prof")
	if err := cmdProfile([]string{"-out", dir, "-runs", "1"}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cpu.pprof", "heap.pprof", "stages.json"} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
	raw, err := os.ReadFile(filepath.Join(dir, "stages.json"))
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Runs   int         `json:"runs"`
		WallNS int64       `json:"wall_ns"`
		Stages []stageCost `json:"stages"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("stages.json: %v", err)
	}
	if out.Runs != 1 || out.WallNS <= 0 {
		t.Errorf("runs=%d wall_ns=%d, want 1 run with positive wall time", out.Runs, out.WallNS)
	}
	if len(out.Stages) == 0 {
		t.Fatal("no stages attributed")
	}
	names := map[string]bool{}
	for _, c := range out.Stages {
		names[c.Stage] = true
		if c.DurationNS < 0 || c.Spans < 1 {
			t.Errorf("stage %q has duration %d over %d spans", c.Stage, c.DurationNS, c.Spans)
		}
	}
	if !names["fusion"] {
		t.Errorf("pipeline attribution missing the fusion stage: %v", names)
	}
}

func TestProfileFlagErrors(t *testing.T) {
	if err := cmdProfile([]string{"-runs", "0"}); err == nil {
		t.Error("-runs 0 accepted")
	}
	if err := cmdProfile([]string{"-bogus"}); err == nil {
		t.Error("bogus flag accepted")
	}
}
