package main

import (
	"fmt"

	"akb/internal/eval"
	"akb/internal/experiments"
)

func cmdTable1(args []string) error {
	fs, seed := newFlagSet("table1")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows := experiments.Table1(*seed)
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.KB,
			fmt.Sprintf("%d (paper: %g million, /1000)", r.Entities, float64(r.Entities)/1000),
			fmt.Sprintf("%d", r.Attributes),
		})
	}
	fmt.Println("Table 1: Statistics of Representative KBs (entities scaled 1000x down)")
	fmt.Print(eval.FormatTable([]string{"KB", "# Entities", "# Attributes"}, out))
	return nil
}

func cmdTable2(args []string) error {
	fs, seed := newFlagSet("table2")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows := experiments.Table2(*seed)
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Class,
			fmt.Sprintf("%d", r.DBpediaRaw),
			fmt.Sprintf("%d", r.DBpediaExtracted),
			fmt.Sprintf("%d", r.FreebaseRaw),
			fmt.Sprintf("%d", r.FreebaseExtract),
			fmt.Sprintf("%d", r.Combined),
		})
	}
	fmt.Println("Table 2: Statistics of Five Representative Classes (# attributes)")
	fmt.Print(eval.FormatTable(
		[]string{"Class", "DBpedia", "Extrac.(DBpedia)", "Freebase", "Extrac.(Freebase)", "Combine(FB&DBp)"},
		out))
	return nil
}

func cmdTable3(args []string) error {
	fs, seed := newFlagSet("table3")
	scale := fs.Int("scale", 100, "divide the paper's 29,283,918 records by this factor")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows := experiments.Table3(experiments.Table3Config{Seed: *seed, Scale: *scale})
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Class,
			fmt.Sprintf("%d", r.RelevantRecords),
			eval.NA(r.CredibleAttrs),
		})
	}
	fmt.Printf("Table 3: Query Stream Extraction Results (records scaled 1/%d)\n", *scale)
	fmt.Print(eval.FormatTable([]string{"Class", "Relevant Query Records", "Credible Attributes"}, out))
	return nil
}
