package main

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strings"

	"akb/internal/core"
	"akb/internal/extract"
)

// cmdShow is kept for compatibility; `akb query` is the one query
// command (patterns, joins, snapshots, live servers) and should be
// preferred.
func cmdShow(args []string) error {
	fmt.Fprintln(os.Stderr, "note: akb show is deprecated; use `akb query -entity <name>` (see akb query -h) — it also answers joins, snapshots and live servers")
	fs, seed := newFlagSet("show")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := core.New(core.WithSeed(*seed)).Run(context.Background())
	if err != nil {
		return err
	}
	name := strings.Join(fs.Args(), " ")
	if name == "" {
		// No entity given: list the ten entities with the most fused facts.
		counts := map[string]int{}
		for _, d := range res.Fused().Decisions {
			counts[extract.AttrFromIRI(d.Item.Subject)] += len(d.Truths)
		}
		names := make([]string, 0, len(counts))
		for n := range counts {
			names = append(names, n)
		}
		sort.Slice(names, func(i, j int) bool {
			if counts[names[i]] != counts[names[j]] {
				return counts[names[i]] > counts[names[j]]
			}
			return names[i] < names[j]
		})
		fmt.Println("usage: akb show [-seed N] <entity name>; best-described entities:")
		for i, n := range names {
			if i == 10 {
				break
			}
			fmt.Printf("  %-40s %d facts\n", n, counts[n])
		}
		return nil
	}

	found := false
	type row struct {
		attr, value string
		belief      float64
		sources     int
	}
	var rows []row
	for _, d := range res.Fused().Decisions {
		if extract.AttrFromIRI(d.Item.Subject) != name {
			continue
		}
		found = true
		for _, t := range d.Truths {
			n := 0
			if vc := d.Item.Value(t); vc != nil {
				n = vc.SupportCount()
			}
			rows = append(rows, row{
				attr: extract.AttrFromIRI(d.Item.Predicate), value: t.Value,
				belief: d.Belief[t.Key()], sources: n,
			})
		}
	}
	if !found {
		return fmt.Errorf("no fused knowledge about %q (try akb show with no argument for a list)", name)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].attr != rows[j].attr {
			return rows[i].attr < rows[j].attr
		}
		return rows[i].value < rows[j].value
	})
	fmt.Printf("Fused knowledge about %q:\n", name)
	for _, r := range rows {
		fmt.Printf("  %-28s = %-28s belief %.2f, %d sources\n", r.attr, r.value, r.belief, r.sources)
	}
	return nil
}
