package main

import (
	"fmt"

	"akb/internal/eval"
	"akb/internal/experiments"
)

func cmdDiscover(args []string) error {
	fs, seed := newFlagSet("discover")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows := experiments.EntityDiscovery(*seed)
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%.1f", r.Coverage),
			fmt.Sprintf("%d", r.UncoveredOnWeb),
			fmt.Sprintf("%d", r.Discovered),
			fmt.Sprintf("%d", r.Linked),
			fmt.Sprintf("%.3f", r.Precision),
			fmt.Sprintf("%.3f", r.Recall),
		})
	}
	fmt.Println("New entity creation (joint entity linking and discovery) vs KB coverage:")
	fmt.Print(eval.FormatTable(
		[]string{"Freebase coverage", "Uncovered on Web", "Discovered", "Linked mentions", "Precision", "Recall"}, out))
	return nil
}
