package main

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"akb/internal/obs"
	"akb/internal/serve"
	"akb/internal/store"
)

// loadtestStore builds a small sharded store with enough structure for
// target harvesting: several classes, entities and attributes.
func loadtestStore() *store.Sharded {
	var facts []store.Fact
	for c, class := range []string{"Book", "Film"} {
		for e := 0; e < 6; e++ {
			entity := fmt.Sprintf("%s %d", class, e)
			for a := 0; a < 3; a++ {
				facts = append(facts, store.Fact{
					Entity: entity, Class: class,
					Attr: fmt.Sprintf("attr%d", a), Value: fmt.Sprintf("v%d-%d", c, e),
					Confidence: 0.9,
				})
			}
		}
	}
	return store.NewSharded(facts, 4)
}

// TestLoadtestClosedLoop runs the full loadtest command against an
// in-process server and checks the report artifact it writes.
func TestLoadtestClosedLoop(t *testing.T) {
	s := serve.New(loadtestStore(), obs.NewRegistry(), serve.DefaultConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "BENCH_load.json")
	err := cmdLoadtest([]string{
		"-url", ts.URL, "-duration", "300ms", "-warmup", "50ms",
		"-conns", "4", "-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep LoadReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Mode != "closed" {
		t.Errorf("mode = %q, want closed", rep.Mode)
	}
	if rep.Requests == 0 || rep.ThroughputRPS <= 0 {
		t.Errorf("no throughput recorded: %+v", rep)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 {
		t.Errorf("implausible latency summary: %+v", rep.Latency)
	}
	if rep.Status["200"] == 0 {
		t.Errorf("no 200s: %v", rep.Status)
	}
	if rep.Errors != 0 {
		t.Errorf("transport errors against local server: %d", rep.Errors)
	}
}

// TestLoadtestOpenLoop checks the rate-scheduled mode produces roughly
// the offered rate and records shed/dropped accounting fields.
func TestLoadtestOpenLoop(t *testing.T) {
	s := serve.New(loadtestStore(), obs.NewRegistry(), serve.DefaultConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	out := filepath.Join(t.TempDir(), "BENCH_load.json")
	err := cmdLoadtest([]string{
		"-url", ts.URL, "-duration", "400ms", "-warmup", "0",
		"-rps", "100", "-conns", "4", "-mix", "2:1:1", "-out", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep LoadReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "open" || rep.OfferedRPS != 100 {
		t.Errorf("mode/offered = %q/%v", rep.Mode, rep.OfferedRPS)
	}
	// 400ms at 100 rps ≈ 40 requests; allow wide scheduling slop.
	if rep.Requests < 10 || rep.Requests > 80 {
		t.Errorf("open-loop requests = %d, want ≈40", rep.Requests)
	}
}

// TestParseMix pins the mix-string grammar.
func TestParseMix(t *testing.T) {
	if w, err := parseMix("2:1:0"); err != nil || w != [3]int{2, 1, 0} {
		t.Errorf("parseMix(2:1:0) = %v, %v", w, err)
	}
	for _, bad := range []string{"", "1:1", "1:1:1:1", "a:1:1", "-1:1:1", "0:0:0"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) succeeded, want error", bad)
		}
	}
}
