package main

import (
	"fmt"

	"akb/internal/eval"
	"akb/internal/experiments"
)

func cmdTemporal(args []string) error {
	fs, seed := newFlagSet("temporal")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows := experiments.Temporal(*seed)
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%.1f", r.ErrorRate),
			fmt.Sprintf("%d", r.Statements),
			fmt.Sprintf("%d", r.Timelines),
			fmt.Sprintf("%.3f", r.RawAccuracy),
			fmt.Sprintf("%.3f", r.FusedAccuracy),
		})
	}
	fmt.Println("Temporal knowledge extraction: year-level accuracy, raw vs timeline-fused")
	fmt.Print(eval.FormatTable(
		[]string{"Corpus error rate", "Statements", "Timelines", "Raw accuracy", "Fused accuracy"}, out))
	return nil
}
