package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"akb/internal/store"
)

func TestFastCommandsRun(t *testing.T) {
	// The heavyweight experiment commands are exercised by the experiments
	// package; here we smoke-test the CLI plumbing with the fast ones.
	for _, c := range []struct {
		name string
		run  func([]string) error
		args []string
	}{
		{"table1", cmdTable1, nil},
		{"table2", cmdTable2, nil},
		{"table3", cmdTable3, []string{"-scale", "2000"}},
	} {
		if err := c.run(c.args); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestCommandRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range commands() {
		if c.name == "" || c.brief == "" || c.run == nil {
			t.Errorf("incomplete command %+v", c)
		}
		if seen[c.name] {
			t.Errorf("duplicate command %q", c.name)
		}
		seen[c.name] = true
	}
	for _, want := range []string{"table1", "table2", "table3", "pipeline", "fusion", "ablation", "export", "chaos", "all"} {
		if !seen[want] {
			t.Errorf("command %q missing", want)
		}
	}
}

func TestExportWritesNTriples(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run in -short")
	}
	path := filepath.Join(t.TempDir(), "kb.nt")
	if err := cmdExport([]string{"-o", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty export")
	}
}

// testSnapshotFile writes a small valid snapshot for CLI tests.
func testSnapshotFile(t *testing.T) string {
	t.Helper()
	st := store.New([]store.Fact{
		{Entity: "Casablanca", Class: "Film", Attr: "director", Value: "Michael Curtiz", Confidence: 0.97, Sources: 5},
		{Entity: "Casablanca", Class: "Film", Attr: "language", Value: "English", Confidence: 0.92, Sources: 4},
		{Entity: "Moby Dick", Class: "Book", Attr: "author", Value: "Herman Melville", Confidence: 0.99, Sources: 7},
	})
	path := filepath.Join(t.TempDir(), "kb.akb")
	if err := st.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestSnapshotVerifyCommand(t *testing.T) {
	path := testSnapshotFile(t)
	if err := cmdSnapshot([]string{"verify", path}); err != nil {
		t.Fatalf("verify of valid snapshot: %v", err)
	}
	if err := cmdSnapshot([]string{"info", path}); err != nil {
		t.Fatalf("info of valid snapshot: %v", err)
	}

	// Corrupt one byte: verify must fail with the checksum message.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[strings.Index(string(raw), "Casablanca")] = 'X'
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	err = cmdSnapshot([]string{"verify", path})
	if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("verify of corrupt snapshot: %v", err)
	}
	if err := cmdSnapshot([]string{"info", path}); err == nil {
		t.Error("info of corrupt snapshot reported success")
	}

	for _, bad := range [][]string{nil, {"verify"}, {"bogus", path}} {
		if err := cmdSnapshot(bad); err == nil {
			t.Errorf("args %v accepted", bad)
		}
	}
}

// TestChaosServeCommand runs the full serve-side chaos harness against a
// small snapshot: faults injected, invariants asserted, exit clean.
func TestChaosServeCommand(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos run in -short")
	}
	path := testSnapshotFile(t)
	err := cmdChaosServe([]string{
		"-snapshot", path, "-requests", "160", "-workers", "8",
		"-fail-prob", "0.3", "-timeout", "100ms", "-reloads", "4",
	})
	if err != nil {
		t.Fatalf("chaos-serve invariants failed: %v", err)
	}
}

func TestFlagErrors(t *testing.T) {
	if err := cmdTable1([]string{"-bogus"}); err == nil {
		t.Error("bogus flag accepted")
	}
	if err := cmdPipeline([]string{"-faults", "not-a-plan"}); err == nil {
		t.Error("malformed fault plan accepted")
	}
	if err := cmdChaos([]string{"-rates", "1.5"}); err == nil {
		t.Error("out-of-range chaos rate accepted")
	}
	if err := cmdChaos([]string{"-stages", " , "}); err == nil {
		t.Error("empty chaos stage list accepted")
	}
	if err := cmdServe([]string{"-chaos-fail", "1.5"}); err == nil {
		t.Error("out-of-range chaos-fail accepted")
	}
	if err := cmdChaosServe([]string{"-fail-prob", "-1"}); err == nil {
		t.Error("negative fail-prob accepted")
	}
	if err := cmdChaosServe([]string{"-requests", "2", "-workers", "8"}); err == nil {
		t.Error("fewer requests than workers accepted")
	}
}

func TestChaosSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run in -short")
	}
	// A single full-degradation point: every optional stage fails, the
	// sweep must still complete and render its table.
	if err := cmdChaos([]string{"-rates", "1", "-stages", "optional"}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineWithFaultsRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run in -short")
	}
	if err := cmdPipeline([]string{"-faults", "extract/textx=1"}); err != nil {
		t.Fatal(err)
	}
}
