package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFastCommandsRun(t *testing.T) {
	// The heavyweight experiment commands are exercised by the experiments
	// package; here we smoke-test the CLI plumbing with the fast ones.
	for _, c := range []struct {
		name string
		run  func([]string) error
		args []string
	}{
		{"table1", cmdTable1, nil},
		{"table2", cmdTable2, nil},
		{"table3", cmdTable3, []string{"-scale", "2000"}},
	} {
		if err := c.run(c.args); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func TestCommandRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range commands() {
		if c.name == "" || c.brief == "" || c.run == nil {
			t.Errorf("incomplete command %+v", c)
		}
		if seen[c.name] {
			t.Errorf("duplicate command %q", c.name)
		}
		seen[c.name] = true
	}
	for _, want := range []string{"table1", "table2", "table3", "pipeline", "fusion", "ablation", "export", "chaos", "all"} {
		if !seen[want] {
			t.Errorf("command %q missing", want)
		}
	}
}

func TestExportWritesNTriples(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run in -short")
	}
	path := filepath.Join(t.TempDir(), "kb.nt")
	if err := cmdExport([]string{"-o", path}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("empty export")
	}
}

func TestFlagErrors(t *testing.T) {
	if err := cmdTable1([]string{"-bogus"}); err == nil {
		t.Error("bogus flag accepted")
	}
	if err := cmdPipeline([]string{"-faults", "not-a-plan"}); err == nil {
		t.Error("malformed fault plan accepted")
	}
	if err := cmdChaos([]string{"-rates", "1.5"}); err == nil {
		t.Error("out-of-range chaos rate accepted")
	}
	if err := cmdChaos([]string{"-stages", " , "}); err == nil {
		t.Error("empty chaos stage list accepted")
	}
}

func TestChaosSweepRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run in -short")
	}
	// A single full-degradation point: every optional stage fails, the
	// sweep must still complete and render its table.
	if err := cmdChaos([]string{"-rates", "1", "-stages", "optional"}); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineWithFaultsRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run in -short")
	}
	if err := cmdPipeline([]string{"-faults", "extract/textx=1"}); err != nil {
		t.Fatal(err)
	}
}
