package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"akb/internal/core"
	"akb/internal/eval"
	"akb/internal/obs"
	"akb/internal/sched"
)

// cmdReport pretty-prints a telemetry RunReport written by `akb pipeline
// -report`: a per-stage table (duration, attempts, statements, throughput)
// derived from the stage spans, the embedded health report, and the
// metric snapshot.
func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	metricsOn := fs.Bool("metrics", true, "print the metric snapshot")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: akb report [flags] <runreport.json>")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	rr, err := obs.ReadRunReport(f)
	if err != nil {
		return err
	}

	schema := "legacy"
	if rr.SchemaVersion > 0 {
		schema = fmt.Sprintf("v%d", rr.SchemaVersion)
	}
	fmt.Printf("Run started %s, wall time %s, %d spans, %d metrics (schema %s)\n",
		rr.Started.Format(time.RFC3339), time.Duration(rr.DurationNS).Round(time.Millisecond),
		len(rr.Spans), len(rr.Metrics), schema)
	if len(rr.Health) > 0 {
		var health core.HealthReport
		if err := json.Unmarshal(rr.Health, &health); err == nil {
			fmt.Printf("Health: %s\n", health)
		}
	}

	fmt.Println("\nPer-stage telemetry:")
	rows := make([][]string, 0)
	for _, span := range stageSpans(rr) {
		stmts, rate := "-", "-"
		if n, ok := stageStatements(rr, span); ok {
			stmts = strconv.Itoa(n)
			if secs := span.Duration().Seconds(); secs > 0 {
				rate = fmt.Sprintf("%.0f", float64(n)/secs)
			}
		}
		errCell := "-"
		if span.Error != "" {
			errCell = firstLine(span.Error)
		}
		rows = append(rows, []string{
			span.Name,
			span.Duration().Round(10 * time.Microsecond).String(),
			orDash(span.Attr("attempts")),
			orDash(span.Attr("health")),
			stmts,
			rate,
			errCell,
		})
	}
	fmt.Print(eval.FormatTable(
		[]string{"Stage", "Duration", "Attempts", "Health", "Statements", "Stmts/sec", "Error"}, rows))

	if erows := executorRows(rr); len(erows) > 0 {
		fmt.Println("\nExecutor (mapreduce chunks; quantiles estimated from histogram buckets):")
		fmt.Print(eval.FormatTable([]string{"Histogram", "Count", "Mean", "~p50", "~p99"}, erows))
	}

	if *metricsOn && len(rr.Metrics) > 0 {
		fmt.Println("\nMetrics:")
		mrows := make([][]string, 0, len(rr.Metrics))
		for _, m := range rr.Metrics {
			switch m.Kind {
			case "histogram":
				mean := "-"
				if m.Count > 0 {
					mean = fmt.Sprintf("%.6f", m.Sum/float64(m.Count))
				}
				mrows = append(mrows, []string{m.Name, m.Kind,
					fmt.Sprintf("count=%d sum=%.6f mean=%s", m.Count, m.Sum, mean)})
			default:
				mrows = append(mrows, []string{m.Name, m.Kind, formatMetricValue(m.Value)})
			}
		}
		fmt.Print(eval.FormatTable([]string{"Metric", "Kind", "Value"}, mrows))
	}
	return nil
}

// stageSpans returns the spans that represent supervised stages. In a
// serial run the stage spans are the roots; on the DAG scheduler
// (`pipeline -parallel`) they nest under one root "sched" span, which is
// unwrapped into its children so both layouts render the same table.
func stageSpans(rr *obs.RunReport) []obs.SpanReport {
	out := make([]obs.SpanReport, 0, len(rr.Spans))
	for _, span := range rr.RootSpans() {
		if span.Name == sched.SpanName {
			out = append(out, rr.Children(span.ID)...)
			continue
		}
		out = append(out, span)
	}
	return out
}

// stageStatements finds the stage's "statements" annotation: on the stage
// span itself or, since stage bodies annotate the attempt they ran under,
// on the latest child attempt span that carries one.
func stageStatements(rr *obs.RunReport, span obs.SpanReport) (int, bool) {
	candidates := []obs.SpanReport{span}
	candidates = append(candidates, rr.Children(span.ID)...)
	found, ok := 0, false
	for _, c := range candidates {
		if v := c.Attr("statements"); v != "" {
			if n, err := strconv.Atoi(v); err == nil {
				found, ok = n, true
			}
		}
	}
	return found, ok
}

func formatMetricValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'f', 6, 64)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// executorRows summarises the map-reduce executor's histograms: per-phase
// chunk latency plus the shared queue-wait distribution, with p50/p99
// estimated by linear interpolation inside the matching bucket. Queue
// wait is the scheduling signal: a p99 far above the chunk latency means
// chunks sat behind a saturated worker pool instead of executing.
func executorRows(rr *obs.RunReport) [][]string {
	rows := make([][]string, 0, 4)
	for _, m := range rr.Metrics {
		if m.Kind != "histogram" || !strings.HasPrefix(m.Name, "akb_mapreduce_") {
			continue
		}
		if !strings.HasSuffix(m.Name, "_task_seconds") && m.Name != "akb_mapreduce_queue_wait_seconds" {
			continue
		}
		if m.Count == 0 {
			continue
		}
		mean := time.Duration(m.Sum / float64(m.Count) * 1e9)
		p50 := quantileCell(m, 0.5)
		p99 := quantileCell(m, 0.99)
		rows = append(rows, []string{
			m.Name, strconv.FormatInt(m.Count, 10),
			mean.Round(time.Microsecond).String(), p50, p99,
		})
	}
	return rows
}

// quantileCell renders the q-th quantile estimated from per-bin bucket
// counts; observations past the last bound render as ">bound".
func quantileCell(m obs.Metric, q float64) string {
	target := q * float64(m.Count)
	cum := int64(0)
	lower := 0.0
	for _, b := range m.Buckets {
		cum += b.Count
		if float64(cum) >= target && b.Count > 0 {
			frac := (target - float64(cum-b.Count)) / float64(b.Count)
			secs := lower + frac*(b.LE-lower)
			return time.Duration(secs * 1e9).Round(100 * time.Nanosecond).String()
		}
		lower = b.LE
	}
	return ">" + time.Duration(lower*1e9).Round(100*time.Nanosecond).String()
}
