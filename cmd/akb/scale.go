package main

import (
	"fmt"

	"akb/internal/eval"
	"akb/internal/experiments"
)

func cmdScale(args []string) error {
	fs, seed := newFlagSet("scale")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows := experiments.Scalability(*seed)
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("%d", r.Entities),
			fmt.Sprintf("%d", r.Statements),
			fmt.Sprintf("%d", r.Items),
			fmt.Sprintf("%d", r.ExtractMS),
			fmt.Sprintf("%d", r.FuseMS),
			fmt.Sprintf("%.1f", r.ThroughputKCps),
		})
	}
	fmt.Println("Scalability: pipeline cost vs world size (wall-clock; FULL fusion on the map-reduce executor)")
	fmt.Print(eval.FormatTable(
		[]string{"Entities/class", "Statements", "Items", "Extract ms", "Fuse ms", "kClaims/s"}, out))
	return nil
}
