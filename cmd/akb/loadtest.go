package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// cmdLoadtest drives a running `akb serve` instance with a configurable
// request mix and reports latency percentiles, throughput and shed rate
// as a machine-readable JSON artifact (BENCH_load.json by default).
//
// Two generator modes share the same workers and bookkeeping:
//
//   - closed loop (-rps 0, the default): -conns workers each keep exactly
//     one request in flight, so offered load adapts to server latency.
//     This measures capacity: "how fast can it go?"
//   - open loop (-rps N): requests are released on a fixed schedule
//     regardless of completions, the way real traffic arrives. In-flight
//     requests are bounded; releases that find no free worker are counted
//     as client_dropped rather than blocking the schedule, so coordinated
//     omission does not flatter the percentiles. This measures behaviour
//     at a chosen load: "what does 500 rps feel like?"
//
// Targets are harvested from the server itself before the run: classes
// from /healthz, then one capped /v1/query per class to collect real
// entity and (entity, attr) pairs, so every generated request hits the
// live dataset rather than 404ing.
func cmdLoadtest(args []string) error {
	fs := flag.NewFlagSet("loadtest", flag.ContinueOnError)
	baseURL := fs.String("url", "http://127.0.0.1:8080", "base URL of the akb serve instance")
	rps := fs.Float64("rps", 0, "open-loop request rate; 0 runs closed-loop at -conns concurrency")
	duration := fs.Duration("duration", 10*time.Second, "measurement window")
	conns := fs.Int("conns", 8, "closed-loop workers / open-loop in-flight bound")
	mix := fs.String("mix", "1:1:1", "entity:triples:query request weight mix")
	timeout := fs.Duration("timeout", 5*time.Second, "per-request client timeout")
	seed := fs.Int64("seed", 1, "seed for target selection, making runs reproducible")
	warmup := fs.Duration("warmup", 500*time.Millisecond, "untimed warmup before the measurement window")
	outPath := fs.String("out", "BENCH_load.json", "write the JSON report here (empty: stdout summary only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *conns < 1 {
		return fmt.Errorf("-conns %d: need at least one worker", *conns)
	}
	weights, err := parseMix(*mix)
	if err != nil {
		return err
	}

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *conns * 2,
			MaxIdleConnsPerHost: *conns * 2,
		},
	}

	if err := waitReady(client, *baseURL, 30*time.Second); err != nil {
		return err
	}
	targets, err := harvestTargets(client, *baseURL, rand.New(rand.NewSource(*seed)))
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "loadtest: %d entity, %d triples, %d query targets harvested from %s\n",
		len(targets.entities), len(targets.triples), len(targets.queries), *baseURL)

	gen := newLoadGen(client, targets, weights, *seed)

	// Warmup primes connections and server caches outside the window.
	if *warmup > 0 {
		warmCtx, cancel := context.WithTimeout(context.Background(), *warmup)
		gen.run(warmCtx, *conns, 0)
		cancel()
		gen.reset()
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	start := time.Now()
	gen.run(ctx, *conns, *rps)
	elapsed := time.Since(start)

	rep := gen.report(*baseURL, *mix, *rps, *conns, elapsed)
	printLoadReport(os.Stdout, rep)
	if *outPath != "" {
		if err := writeJSONFile(*outPath, rep); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "loadtest: report -> %s\n", *outPath)
	}
	return nil
}

// parseMix parses "entity:triples:query" integer weights.
func parseMix(s string) ([3]int, error) {
	var w [3]int
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return w, fmt.Errorf("-mix %q: want three ':'-separated weights (entity:triples:query)", s)
	}
	total := 0
	for i, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n < 0 {
			return w, fmt.Errorf("-mix %q: weight %q is not a non-negative integer", s, p)
		}
		w[i] = n
		total += n
	}
	if total == 0 {
		return w, fmt.Errorf("-mix %q: all weights are zero", s)
	}
	return w, nil
}

// waitReady polls /readyz until the server accepts traffic.
func waitReady(client *http.Client, base string, patience time.Duration) error {
	deadline := time.Now().Add(patience)
	for {
		resp, err := client.Get(base + "/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("loadtest: %s/readyz never became ready: %w", base, err)
			}
			return fmt.Errorf("loadtest: %s/readyz never became ready", base)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// loadTargets holds pre-built request URLs per route class.
type loadTargets struct {
	entities []string // /v1/entity/{id}
	triples  []string // /v1/triples/{entity}/{attr}
	queries  []string // /v1/query?...
}

// harvestTargets asks the server what it is serving and builds URL pools
// from real entities, attributes and classes.
func harvestTargets(client *http.Client, base string, rng *rand.Rand) (*loadTargets, error) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return nil, fmt.Errorf("loadtest: healthz: %w", err)
	}
	var health struct {
		Classes []string `json:"classes"`
	}
	err = json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if err != nil {
		return nil, fmt.Errorf("loadtest: healthz: %w", err)
	}
	if len(health.Classes) == 0 {
		return nil, fmt.Errorf("loadtest: server reports no classes; nothing to query")
	}

	t := &loadTargets{}
	seenEntity := map[string]bool{}
	seenPair := map[string]bool{}
	for _, class := range health.Classes {
		qurl := base + "/v1/query?class=" + url.QueryEscape(class) + "&limit=200"
		resp, err := client.Get(qurl)
		if err != nil {
			return nil, fmt.Errorf("loadtest: harvest %s: %w", class, err)
		}
		var body struct {
			Facts []struct {
				Entity string `json:"entity"`
				Attr   string `json:"attr"`
			} `json:"facts"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			return nil, fmt.Errorf("loadtest: harvest %s: %w", class, err)
		}
		for _, f := range body.Facts {
			if !seenEntity[f.Entity] {
				seenEntity[f.Entity] = true
				t.entities = append(t.entities, base+"/v1/entity/"+url.PathEscape(f.Entity))
			}
			pair := f.Entity + "\x00" + f.Attr
			if !seenPair[pair] {
				seenPair[pair] = true
				t.triples = append(t.triples,
					base+"/v1/triples/"+url.PathEscape(f.Entity)+"/"+url.PathEscape(f.Attr))
			}
			t.queries = append(t.queries,
				base+"/v1/query?entity="+url.QueryEscape(f.Entity)+"&attr="+url.QueryEscape(f.Attr))
		}
		// Class scans with a cap exercise the scatter-gather merge path.
		t.queries = append(t.queries, base+"/v1/query?class="+url.QueryEscape(class)+"&limit=50")
	}
	rng.Shuffle(len(t.queries), func(i, j int) { t.queries[i], t.queries[j] = t.queries[j], t.queries[i] })
	if len(t.entities) == 0 {
		return nil, fmt.Errorf("loadtest: harvested no entities")
	}
	return t, nil
}

// loadGen fans requests over workers and accumulates results. Latency
// samples are collected per worker and merged afterwards, so the hot
// path takes no locks.
type loadGen struct {
	client  *http.Client
	targets *loadTargets
	weights [3]int
	seed    int64

	mu        sync.Mutex
	latencies []time.Duration
	statuses  map[int]int64
	errors    int64
	dropped   int64
}

func newLoadGen(client *http.Client, targets *loadTargets, weights [3]int, seed int64) *loadGen {
	return &loadGen{client: client, targets: targets, weights: weights, seed: seed, statuses: map[int]int64{}}
}

func (g *loadGen) reset() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.latencies = g.latencies[:0]
	g.statuses = map[int]int64{}
	g.errors = 0
	g.dropped = 0
}

// pick chooses the next target URL for a worker-local rng.
func (g *loadGen) pick(rng *rand.Rand) string {
	total := g.weights[0] + g.weights[1] + g.weights[2]
	n := rng.Intn(total)
	var pool []string
	switch {
	case n < g.weights[0]:
		pool = g.targets.entities
	case n < g.weights[0]+g.weights[1]:
		pool = g.targets.triples
	default:
		pool = g.targets.queries
	}
	if len(pool) == 0 {
		pool = g.targets.entities
	}
	return pool[rng.Intn(len(pool))]
}

// worker state merged under the lock once per run, not per request.
type workerStats struct {
	latencies []time.Duration
	statuses  map[int]int64
	errors    int64
}

func (g *loadGen) do(url string, ws *workerStats) {
	t0 := time.Now()
	resp, err := g.client.Get(url)
	lat := time.Since(t0)
	if err != nil {
		ws.errors++
		return
	}
	// Drain so the connection is reusable; bodies are small.
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	ws.latencies = append(ws.latencies, lat)
	ws.statuses[resp.StatusCode]++
}

func (g *loadGen) merge(ws *workerStats) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.latencies = append(g.latencies, ws.latencies...)
	for code, n := range ws.statuses {
		g.statuses[code] += n
	}
	g.errors += ws.errors
}

// run drives the generator until ctx expires. rps == 0 is closed-loop;
// otherwise an open-loop ticker releases requests at the target rate into
// a bounded worker pool.
func (g *loadGen) run(ctx context.Context, conns int, rps float64) {
	if rps <= 0 {
		var wg sync.WaitGroup
		for w := 0; w < conns; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(g.seed + int64(w)*7919))
				ws := &workerStats{statuses: map[int]int64{}}
				for ctx.Err() == nil {
					g.do(g.pick(rng), ws)
				}
				g.merge(ws)
			}(w)
		}
		wg.Wait()
		return
	}

	// Open loop: a release schedule at 1/rps with a bounded in-flight
	// pool. A full pool means the client is saturated; the release is
	// recorded as dropped instead of delaying the schedule.
	interval := time.Duration(float64(time.Second) / rps)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	slots := make(chan struct{}, conns*8)
	var wg sync.WaitGroup
	var dropped int64
	rng := rand.New(rand.NewSource(g.seed))
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
loop:
	for {
		select {
		case <-ctx.Done():
			break loop
		case <-ticker.C:
			url := g.pick(rng)
			select {
			case slots <- struct{}{}:
				wg.Add(1)
				go func() {
					defer wg.Done()
					defer func() { <-slots }()
					ws := &workerStats{statuses: map[int]int64{}}
					g.do(url, ws)
					g.merge(ws)
				}()
			default:
				atomic.AddInt64(&dropped, 1)
			}
		}
	}
	wg.Wait()
	g.mu.Lock()
	g.dropped += atomic.LoadInt64(&dropped)
	g.mu.Unlock()
}

// LoadReport is the BENCH_load.json shape. Latencies are milliseconds.
type LoadReport struct {
	Target        string           `json:"target"`
	Mode          string           `json:"mode"` // "closed" or "open"
	Mix           string           `json:"mix"`
	OfferedRPS    float64          `json:"offered_rps,omitempty"`
	Conns         int              `json:"conns"`
	DurationSec   float64          `json:"duration_sec"`
	Requests      int              `json:"requests"`
	ThroughputRPS float64          `json:"throughput_rps"`
	Latency       LatencySummary   `json:"latency_ms"`
	Status        map[string]int64 `json:"status"`
	Shed          ShedSummary      `json:"shed"`
	Errors        int64            `json:"transport_errors"`
	ClientDropped int64            `json:"client_dropped,omitempty"`
}

type LatencySummary struct {
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	P999 float64 `json:"p999"`
	Max  float64 `json:"max"`
}

// ShedSummary counts 429 responses: the server protecting itself is a
// first-class result of a load test, not an error.
type ShedSummary struct {
	Count int64   `json:"count"`
	Rate  float64 `json:"rate"`
}

func (g *loadGen) report(target, mix string, rps float64, conns int, elapsed time.Duration) LoadReport {
	g.mu.Lock()
	defer g.mu.Unlock()
	mode := "closed"
	if rps > 0 {
		mode = "open"
	}
	rep := LoadReport{
		Target: target, Mode: mode, Mix: mix, OfferedRPS: rps, Conns: conns,
		DurationSec:   elapsed.Seconds(),
		Requests:      len(g.latencies),
		Status:        map[string]int64{},
		Errors:        g.errors,
		ClientDropped: g.dropped,
	}
	if elapsed > 0 {
		rep.ThroughputRPS = float64(len(g.latencies)) / elapsed.Seconds()
	}
	var shed int64
	for code, n := range g.statuses {
		rep.Status[strconv.Itoa(code)] = n
		if code == http.StatusTooManyRequests {
			shed += n
		}
	}
	rep.Shed = ShedSummary{Count: shed}
	if total := int64(len(g.latencies)); total > 0 {
		rep.Shed.Rate = float64(shed) / float64(total)
	}
	rep.Latency = summarizeLatency(g.latencies)
	return rep
}

func summarizeLatency(lats []time.Duration) LatencySummary {
	if len(lats) == 0 {
		return LatencySummary{}
	}
	sorted := make([]time.Duration, len(lats))
	copy(sorted, lats)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	pct := func(p float64) float64 {
		idx := int(p * float64(len(sorted)-1))
		return ms(sorted[idx])
	}
	var sum time.Duration
	for _, d := range sorted {
		sum += d
	}
	return LatencySummary{
		Mean: ms(sum / time.Duration(len(sorted))),
		P50:  pct(0.50), P90: pct(0.90), P99: pct(0.99), P999: pct(0.999),
		Max: ms(sorted[len(sorted)-1]),
	}
}

func printLoadReport(w *os.File, rep LoadReport) {
	fmt.Fprintf(w, "loadtest %s (%s loop, mix %s, %d conns, %.1fs)\n",
		rep.Target, rep.Mode, rep.Mix, rep.Conns, rep.DurationSec)
	fmt.Fprintf(w, "  requests    %d (%.0f rps)\n", rep.Requests, rep.ThroughputRPS)
	fmt.Fprintf(w, "  latency ms  p50=%.2f p90=%.2f p99=%.2f p99.9=%.2f max=%.2f mean=%.2f\n",
		rep.Latency.P50, rep.Latency.P90, rep.Latency.P99, rep.Latency.P999, rep.Latency.Max, rep.Latency.Mean)
	codes := make([]string, 0, len(rep.Status))
	for c := range rep.Status {
		codes = append(codes, c)
	}
	sort.Strings(codes)
	parts := make([]string, 0, len(codes))
	for _, c := range codes {
		parts = append(parts, fmt.Sprintf("%s:%d", c, rep.Status[c]))
	}
	fmt.Fprintf(w, "  status      %s\n", strings.Join(parts, " "))
	fmt.Fprintf(w, "  shed        %d (rate %.4f)\n", rep.Shed.Count, rep.Shed.Rate)
	if rep.Errors > 0 || rep.ClientDropped > 0 {
		fmt.Fprintf(w, "  errors      transport=%d client_dropped=%d\n", rep.Errors, rep.ClientDropped)
	}
}
