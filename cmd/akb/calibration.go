package main

import (
	"fmt"

	"akb/internal/eval"
	"akb/internal/experiments"
)

func cmdCalibration(args []string) error {
	fs, seed := newFlagSet("calibration")
	buckets := fs.Int("buckets", 10, "number of belief buckets")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows := experiments.Calibration(*seed, *buckets)
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			fmt.Sprintf("[%.1f, %.1f)", r.Low, r.High),
			fmt.Sprintf("%d", r.Count),
			fmt.Sprintf("%.3f", r.MeanBelief),
			fmt.Sprintf("%.3f", r.Precision),
		})
	}
	fmt.Println("Fused-belief calibration (FULL method): empirical precision per belief bucket")
	fmt.Print(eval.FormatTable([]string{"Belief bucket", "Pairs", "Mean belief", "Precision"}, out))
	return nil
}
