package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"akb/internal/core"
	"akb/internal/eval"
	"akb/internal/obs"
	"akb/internal/resilience"
	"akb/internal/serve"
	"akb/internal/store"
)

// cmdChaosServe is the serve-side chaos harness: it starts a real server
// over a real store, injects deterministic faults into the store reads
// (panics on lookups, latency spikes past the request timeout on the
// triples route), hammers the HTTP API from concurrent workers while
// hot-reloading the snapshot under load, then turns injection off and
// proves the server returns to fully clean service.
//
// The invariants it asserts are the robustness contract of internal/serve:
//
//	alive      the process survives every injected panic
//	panics     injected panics were absorbed into JSON 500s (counter > 0)
//	timeouts   latency spikes hit the request timeout as 503s, not hangs
//	shedding   overload sheds 429 with a numeric Retry-After
//	reload     snapshot reloads under load swap atomically; none tears
//	clean      zero 5xx once fault injection stops; /healthz serving
//	ids        every response — 200s, 429s, 500s, 503s — carries a
//	           non-empty X-Request-ID, unique across the whole run
//
// Exit status is non-zero when any invariant fails, so CI can gate on it.
func cmdChaosServe(args []string) error {
	fs, seed := newFlagSet("chaos-serve")
	snapPath := fs.String("snapshot", "", "serve this snapshot (enables reload-under-load); default: run the pipeline inline")
	requests := fs.Int("requests", 400, "requests per phase (faulted, then clean)")
	workers := fs.Int("workers", 8, "concurrent client workers")
	failProb := fs.Float64("fail-prob", 0.25, "per-read probability of an injected store panic")
	fseed := fs.Int64("fault-seed", 1, "seed for deterministic fault decisions")
	maxInflight := fs.Int("max-inflight", 2, "server in-flight bound (small, so shedding is observable)")
	timeout := fs.Duration("timeout", 150*time.Millisecond, "server per-request timeout; the triples route gets 2x this as injected latency")
	reloads := fs.Int("reloads", 10, "hot reloads fired during the faulted phase (snapshot mode only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *failProb < 0 || *failProb > 1 {
		return fmt.Errorf("-fail-prob %v outside [0,1]", *failProb)
	}
	if *workers < 1 || *requests < *workers {
		return fmt.Errorf("need at least one request per worker (requests=%d workers=%d)", *requests, *workers)
	}

	// --- the store under test ---------------------------------------
	var st *store.Store
	cfg := serve.DefaultConfig()
	if *snapPath != "" {
		var err error
		if st, err = store.ReadSnapshotFile(*snapPath); err != nil {
			return err
		}
		path := *snapPath
		cfg.Reloader = func() (store.Querier, error) { return store.ReadSnapshotFile(path) }
	} else {
		fmt.Fprintf(os.Stderr, "no -snapshot given; running pipeline (seed %d) ...\n", *seed)
		res, err := core.New(core.WithSeed(*seed)).Run(context.Background())
		if err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
		st = store.FromResult(res)
	}
	if st.Len() == 0 {
		return fmt.Errorf("store is empty; nothing to chaos-test")
	}

	// --- fault plan: panics on entity/lookup, a latency spike past the
	// request timeout on triples so timeouts demonstrably fire ---------
	plan := &resilience.FaultPlan{
		Seed: *fseed,
		Stages: map[string]resilience.StageFault{
			store.ChaosStageLookup:  {FailProb: *failProb, Transient: true},
			store.ChaosStageEntity:  {FailProb: *failProb, Transient: true},
			store.ChaosStageTriples: {Latency: 2 * *timeout},
		},
	}
	ctl := store.NewChaosController(plan)
	cfg.MaxInFlight = *maxInflight
	cfg.RequestTimeout = *timeout
	cfg.WrapQuerier = ctl.Wrap
	reg := obs.NewRegistry()
	srv := serve.New(st, reg, cfg)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ctx, ln) }()
	base := "http://" + ln.Addr().String()

	f := st.Facts()[0]
	targets := []string{
		"/v1/query?entity=" + url.QueryEscape(f.Entity),
		"/v1/query?attr=" + url.QueryEscape(f.Attr),
		"/v1/entity/" + url.PathEscape(f.Entity),
		"/v1/triples/" + url.PathEscape(f.Entity) + "/" + url.PathEscape(f.Attr),
	}
	fmt.Fprintf(os.Stderr, "chaos-serve: %d facts behind %s, plan %s, %d workers x 2 phases\n",
		st.Len(), base, plan, *workers)

	// --- phase 1: faults on, reloads under load ----------------------
	reloadOK := 0
	reloadDone := make(chan struct{})
	go func() {
		defer close(reloadDone)
		if cfg.Reloader == nil {
			return
		}
		for i := 0; i < *reloads; i++ {
			if _, err := srv.Reload(); err == nil {
				reloadOK++
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()
	ids := newIDTracker()
	faulted := hammer(base, targets, *requests, *workers, ids)
	<-reloadDone
	panicsAfterFaults := reg.Counter("akb_serve_panics").Value()

	// --- phase 2: faults off; service must be spotless ---------------
	ctl.SetEnabled(false)
	clean := hammer(base, targets, *requests, *workers, ids)

	status, health := probeHealth(base)

	// --- invariants ---------------------------------------------------
	type invariant struct {
		name, detail string
		ok           bool
	}
	checks := []invariant{
		{"alive", fmt.Sprintf("process and listener up after %d injected panics", panicsAfterFaults),
			status == http.StatusOK},
		{"panics absorbed", fmt.Sprintf("akb_serve_panics=%d > 0 and every faulted 5xx was an enveloped 500", panicsAfterFaults),
			panicsAfterFaults > 0 && faulted.counts[500] > 0 && faulted.badEnvelope == 0},
		{"timeouts fire", fmt.Sprintf("latency spikes became %d x 503, not hangs", faulted.counts[503]),
			faulted.counts[503] > 0},
		{"shedding sheds", fmt.Sprintf("overload shed %d x 429, Retry-After numeric on all sampled", faulted.counts[429]),
			faulted.counts[429] > 0 && faulted.badRetryAfter == 0},
		{"no torn reads", fmt.Sprintf("%d OK bodies parsed, 0 empty/torn under %d reloads", faulted.counts[200]+clean.counts[200], reloadOK),
			faulted.tornBodies == 0 && clean.tornBodies == 0},
		{"clean after chaos", fmt.Sprintf("post-fault phase: %d requests, %d x 5xx, health %q", clean.total(), clean.serverErrors(), health),
			clean.serverErrors() == 0 && health == "serving"},
	}
	unique, missingIDs, dupIDs := ids.stats()
	checks = append(checks, invariant{
		"request ids", fmt.Sprintf("%d unique X-Request-ID across both phases, %d missing, %d duplicated (panics, sheds and timeouts included)", unique, missingIDs, dupIDs),
		unique > 0 && missingIDs == 0 && dupIDs == 0})
	if cfg.Reloader != nil {
		checks = append(checks, invariant{
			"reload under load", fmt.Sprintf("%d/%d hot reloads swapped in while hammered", reloadOK, *reloads),
			reloadOK > 0})
	}

	rows := make([][]string, 0, len(checks))
	failed := 0
	for _, c := range checks {
		verdict := "PASS"
		if !c.ok {
			verdict = "FAIL"
			failed++
		}
		rows = append(rows, []string{c.name, verdict, c.detail})
	}
	fmt.Println("\nStatus codes (faulted phase → clean phase):")
	fmt.Print(statusTable(faulted, clean))
	fmt.Println("\nInvariants:")
	fmt.Print(eval.FormatTable([]string{"Invariant", "Verdict", "Detail"}, rows))

	cancel()
	<-serveDone
	if failed > 0 {
		return fmt.Errorf("%d of %d invariants failed", failed, len(checks))
	}
	fmt.Println("\nall invariants held: the serving path survives panics, latency spikes, overload and hot reloads")
	return nil
}

// idTracker enforces the request-identity contract across the whole
// chaos run (both phases): every response must carry a non-empty
// X-Request-ID and no ID may repeat.
type idTracker struct {
	mu      sync.Mutex
	seen    map[string]bool
	missing int // responses without an ID
	dups    int // IDs seen more than once
}

func newIDTracker() *idTracker { return &idTracker{seen: make(map[string]bool)} }

func (it *idTracker) record(id string) {
	it.mu.Lock()
	defer it.mu.Unlock()
	switch {
	case id == "":
		it.missing++
	case it.seen[id]:
		it.dups++
	default:
		it.seen[id] = true
	}
}

func (it *idTracker) stats() (unique, missing, dups int) {
	it.mu.Lock()
	defer it.mu.Unlock()
	return len(it.seen), it.missing, it.dups
}

// tally aggregates one hammering phase.
type tally struct {
	mu            sync.Mutex
	counts        map[int]int
	badEnvelope   int // 4xx/5xx whose body is not the JSON error envelope
	badRetryAfter int // 429s without a numeric Retry-After
	tornBodies    int // 200s whose body fails to parse or has zero facts where facts are guaranteed
	transportErrs int
}

func (t *tally) total() int {
	n := 0
	for _, c := range t.counts {
		n += c
	}
	return n + t.transportErrs
}

func (t *tally) serverErrors() int {
	n := 0
	for code, c := range t.counts {
		if code >= 500 {
			n += c
		}
	}
	return n
}

// hammer drives requests/workers concurrent clients over the target
// routes and classifies every response. The shared ids tracker spans
// phases so uniqueness is asserted across the whole run.
func hammer(base string, targets []string, requests, workers int, ids *idTracker) *tally {
	res := &tally{counts: map[int]int{}}
	client := &http.Client{Timeout: 5 * time.Second}
	per := requests / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				target := targets[(w+i)%len(targets)]
				resp, err := client.Get(base + target)
				if err != nil {
					res.mu.Lock()
					res.transportErrs++
					res.mu.Unlock()
					continue
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				ids.record(resp.Header.Get(serve.RequestIDHeader))
				classify(res, resp, raw)
			}
		}(w)
	}
	wg.Wait()
	return res
}

func classify(t *tally, resp *http.Response, raw []byte) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counts[resp.StatusCode]++
	switch {
	case resp.StatusCode == http.StatusOK:
		var body map[string]any
		if err := json.Unmarshal(raw, &body); err != nil {
			t.tornBodies++
		}
	case resp.StatusCode >= 400:
		var envelope struct {
			Error  string `json:"error"`
			Status int    `json:"status"`
		}
		if err := json.Unmarshal(raw, &envelope); err != nil || envelope.Error == "" || envelope.Status != resp.StatusCode {
			t.badEnvelope++
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			if _, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil {
				t.badRetryAfter++
			}
		}
	}
}

func probeHealth(base string) (int, string) {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return 0, err.Error()
	}
	defer resp.Body.Close()
	var body struct {
		Status string `json:"status"`
	}
	json.NewDecoder(resp.Body).Decode(&body)
	return resp.StatusCode, body.Status
}

func statusTable(faulted, clean *tally) string {
	codes := map[int]bool{}
	for c := range faulted.counts {
		codes[c] = true
	}
	for c := range clean.counts {
		codes[c] = true
	}
	sorted := make([]int, 0, len(codes))
	for c := range codes {
		sorted = append(sorted, c)
	}
	sort.Ints(sorted)
	rows := make([][]string, 0, len(sorted)+1)
	for _, c := range sorted {
		rows = append(rows, []string{
			strconv.Itoa(c), http.StatusText(c),
			strconv.Itoa(faulted.counts[c]), strconv.Itoa(clean.counts[c]),
		})
	}
	if faulted.transportErrs+clean.transportErrs > 0 {
		rows = append(rows, []string{"-", "transport error",
			strconv.Itoa(faulted.transportErrs), strconv.Itoa(clean.transportErrs)})
	}
	return eval.FormatTable([]string{"Code", "Meaning", "Faulted", "Clean"}, rows)
}
