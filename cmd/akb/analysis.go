package main

import (
	"fmt"

	"akb/internal/eval"
	"akb/internal/experiments"
)

func cmdDOMSweep(args []string) error {
	fs, seed := newFlagSet("domsweep")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows := experiments.DOMSweep(*seed)
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Param, r.Value,
			fmt.Sprintf("%d", r.Discovered),
			fmt.Sprintf("%.3f", r.Precision),
			fmt.Sprintf("%.3f", r.StmtPrecision),
		})
	}
	fmt.Println("Algorithm 1 (DOM-tree extraction) parameter sweep:")
	fmt.Print(eval.FormatTable(
		[]string{"Parameter", "Value", "Discovered attrs", "Attr precision", "Stmt precision"}, out))
	return nil
}

func cmdFusion(args []string) error {
	fs, seed := newFlagSet("fusion")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows := experiments.FusionComparison(*seed)
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Workload, r.Method,
			fmt.Sprintf("%.3f", r.P),
			fmt.Sprintf("%.3f", r.R),
			fmt.Sprintf("%.3f", r.F1),
		})
	}
	fmt.Println("Knowledge-fusion method comparison (baselines vs the paper's proposals):")
	fmt.Print(eval.FormatTable([]string{"Workload", "Method", "Precision", "Recall", "F1"}, out))
	return nil
}

func cmdAblation(args []string) error {
	fs, seed := newFlagSet("ablation")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rows := experiments.Ablations(*seed)
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Ablation, r.Variant,
			fmt.Sprintf("%.3f", r.P),
			fmt.Sprintf("%.3f", r.R),
			fmt.Sprintf("%.3f", r.F1),
		})
	}
	fmt.Println("Design-choice ablations (paper §3.2 bullets):")
	fmt.Print(eval.FormatTable([]string{"Ablation", "Variant", "Precision", "Recall", "F1"}, out))
	return nil
}
