package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"time"

	"akb/internal/core"
	"akb/internal/eval"
	"akb/internal/obs"
)

// cmdProfile runs the pipeline under the Go profilers and correlates
// the result with the obs stage spans — the tooling the ROADMAP's "make
// pipeline parallelism actually pay" item needs: BENCH_parallel.json
// says parallelism loses (~0.95x), the stage spans say where the time
// goes per stage, and the pprof files say where it goes per function.
//
// It writes into -out:
//
//	cpu.pprof    CPU profile across all -runs pipeline executions
//	heap.pprof   post-run heap profile (after a GC, so live objects)
//	stages.json  the per-stage attribution table, machine-readable
//
// and prints the attribution table: per stage, total wall time across
// runs, share of summed stage time, attempts and statements. Inspect
// the profiles with `go tool pprof <file>`.
func cmdProfile(args []string) error {
	fs, seed := newFlagSet("profile")
	outDir := fs.String("out", "profile", "directory for cpu.pprof, heap.pprof and stages.json")
	parallel := fs.Int("parallel", 0, "DAG-scheduler parallelism for the profiled runs (0 or 1: serial)")
	runs := fs.Int("runs", 1, "pipeline executions under the profiler (more runs, more CPU samples)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *runs < 1 {
		return fmt.Errorf("-runs %d < 1", *runs)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		return err
	}

	opts := []core.Option{core.WithSeed(*seed)}
	if *parallel != 0 {
		opts = append(opts, core.WithParallelism(*parallel))
	}

	cpuPath := filepath.Join(*outDir, "cpu.pprof")
	cpuFile, err := os.Create(cpuPath)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(cpuFile); err != nil {
		cpuFile.Close()
		return fmt.Errorf("start cpu profile: %w", err)
	}

	run := obs.NewRun()
	ctx := obs.Into(context.Background(), run)
	wallStart := time.Now()
	var runErr error
	for i := 0; i < *runs; i++ {
		if _, err := core.New(opts...).Run(ctx); err != nil {
			runErr = fmt.Errorf("pipeline run %d: %w", i+1, err)
			break
		}
	}
	wall := time.Since(wallStart)
	pprof.StopCPUProfile()
	if err := cpuFile.Close(); err != nil {
		return err
	}
	if runErr != nil {
		return runErr
	}

	// Heap after a forced GC: live allocations, not garbage awaiting
	// collection.
	runtime.GC()
	heapPath := filepath.Join(*outDir, "heap.pprof")
	heapFile, err := os.Create(heapPath)
	if err != nil {
		return err
	}
	if err := pprof.WriteHeapProfile(heapFile); err != nil {
		heapFile.Close()
		return fmt.Errorf("write heap profile: %w", err)
	}
	if err := heapFile.Close(); err != nil {
		return err
	}

	rr, err := run.Report(nil)
	if err != nil {
		return err
	}
	costs := profileAttribution(rr)
	if err := writeJSONFile(filepath.Join(*outDir, "stages.json"), struct {
		Runs       int         `json:"runs"`
		Parallel   int         `json:"parallel"`
		WallNS     int64       `json:"wall_ns"`
		Stages     []stageCost `json:"stages"`
		CPUProfile string      `json:"cpu_profile"`
		Heap       string      `json:"heap_profile"`
	}{*runs, *parallel, wall.Nanoseconds(), costs, cpuPath, heapPath}); err != nil {
		return err
	}

	fmt.Printf("Profiled %d run(s), parallel=%d, wall %s\n", *runs, *parallel, wall.Round(time.Millisecond))
	fmt.Println("\nPer-stage attribution (stage spans across all runs):")
	fmt.Print(eval.FormatTable(
		[]string{"Stage", "Total", "Share", "Spans", "Statements"}, attributionRows(costs)))
	fmt.Printf("\nProfiles: %s, %s (inspect with `go tool pprof <file>`); table in %s\n",
		cpuPath, heapPath, filepath.Join(*outDir, "stages.json"))
	return nil
}

// stageCost aggregates every span a stage produced across the profiled
// runs.
type stageCost struct {
	Stage      string  `json:"stage"`
	DurationNS int64   `json:"duration_ns"`
	Share      float64 `json:"share"`
	Spans      int     `json:"spans"`
	Statements int     `json:"statements,omitempty"`
}

// profileAttribution folds a RunReport's stage spans into per-stage
// totals, ordered by descending cost (ties by name, so output is
// deterministic). Share is each stage's fraction of summed stage time —
// the quantity to compare against pprof's per-function view.
func profileAttribution(rr *obs.RunReport) []stageCost {
	byName := map[string]*stageCost{}
	order := []string{}
	for _, span := range stageSpans(rr) {
		c, ok := byName[span.Name]
		if !ok {
			c = &stageCost{Stage: span.Name}
			byName[span.Name] = c
			order = append(order, span.Name)
		}
		c.DurationNS += span.DurationNS
		c.Spans++
		if n, ok := stageStatements(rr, span); ok {
			c.Statements = n
		}
	}
	var total int64
	for _, name := range order {
		total += byName[name].DurationNS
	}
	out := make([]stageCost, 0, len(order))
	for _, name := range order {
		c := *byName[name]
		if total > 0 {
			c.Share = float64(c.DurationNS) / float64(total)
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DurationNS != out[j].DurationNS {
			return out[i].DurationNS > out[j].DurationNS
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

func attributionRows(costs []stageCost) [][]string {
	rows := make([][]string, 0, len(costs))
	for _, c := range costs {
		stmts := "-"
		if c.Statements > 0 {
			stmts = strconv.Itoa(c.Statements)
		}
		rows = append(rows, []string{
			c.Stage,
			time.Duration(c.DurationNS).Round(10 * time.Microsecond).String(),
			fmt.Sprintf("%.1f%%", c.Share*100),
			strconv.Itoa(c.Spans),
			stmts,
		})
	}
	return rows
}
