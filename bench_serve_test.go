// Serving benchmarks: indexed store lookups vs brute-force scans, and the
// HTTP query API end to end. Both write their measurements into
// BENCH_serve.json (merged, so either benchmark can run alone) which CI
// archives per commit. Run with:
//
//	go test -bench='StoreLookup|ServeQuery' -benchtime=100x
package akb_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"akb/internal/core"
	"akb/internal/obs"
	"akb/internal/serve"
	"akb/internal/store"
)

// serveStore builds one pipeline-scale store for all serving benchmarks.
var serveStore = sync.OnceValue(func() *store.Store {
	res, err := core.New().Run(context.Background())
	if err != nil {
		panic(err)
	}
	return store.FromResult(res)
})

// mergeBenchServe read-modify-writes one section of BENCH_serve.json, so
// the two serving benchmarks can run independently without clobbering
// each other's numbers.
func mergeBenchServe(b *testing.B, section string, v any) {
	b.Helper()
	out := map[string]json.RawMessage{}
	if raw, err := os.ReadFile("BENCH_serve.json"); err == nil {
		_ = json.Unmarshal(raw, &out)
	}
	raw, err := json.Marshal(v)
	if err != nil {
		b.Fatal(err)
	}
	out[section] = raw
	f, err := os.Create("BENCH_serve.json")
	if err != nil {
		b.Fatal(err)
	}
	defer f.Close()
	if err := obs.WriteJSON(f, out); err != nil {
		b.Fatal(err)
	}
}

// benchQueries is a representative query mix over the fused KB: point
// lookups, per-class sweeps and hierarchy-aware value matches.
func benchQueries(st *store.Store) []store.Pattern {
	facts := st.Facts()
	ent, attr := facts[0].Entity, facts[0].Attr
	qs := []store.Pattern{
		{Entity: ent},
		{Entity: ent, Attr: attr},
		{Class: st.Classes()[0], Attr: attr},
		{Attr: attr, Value: facts[0].Value},
	}
	for _, f := range facts {
		if len(f.Ancestors) > 0 {
			qs = append(qs, store.Pattern{Value: f.Ancestors[len(f.Ancestors)-1]})
			break
		}
	}
	return qs
}

// BenchmarkStoreLookup measures the indexed read path against the
// brute-force scan on the same query mix, across serving layouts: the
// flat store and the entity-hash-sharded store. Each layout contributes
// a row (keyed by its shard count) to BENCH_serve.json, pinning both the
// >=10x index-vs-scan criterion (ISSUE 5) and the cost of the sharded
// scatter-gather merge relative to one flat store (ISSUE 9).
func BenchmarkStoreLookup(b *testing.B) {
	flat := serveStore()
	if flat.Len() == 0 {
		b.Fatal("empty store")
	}
	qs := benchQueries(flat)
	type layout struct {
		shards int
		lookup func(q store.Pattern) []store.Fact
		scan   func(q store.Pattern) []store.Fact
	}
	sharded := store.NewSharded(flat.Facts(), store.DefaultShards)
	layouts := []layout{
		{1, flat.Lookup, flat.Scan},
		{sharded.ShardCount(), sharded.Lookup, sharded.Scan},
	}
	rows := make([]map[string]any, 0, len(layouts))
	for _, l := range layouts {
		nsPerOp := map[string]int64{}
		for _, sub := range []struct {
			name string
			run  func(q store.Pattern) []store.Fact
		}{
			{"indexed", l.lookup},
			{"scan", l.scan},
		} {
			sub := sub
			b.Run(fmt.Sprintf("shards=%d/%s", l.shards, sub.name), func(b *testing.B) {
				b.ReportAllocs()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					if got := sub.run(qs[i%len(qs)]); len(got) == 0 {
						b.Fatalf("query %+v returned nothing", qs[i%len(qs)])
					}
				}
				nsPerOp[sub.name] = time.Since(start).Nanoseconds() / int64(b.N)
			})
		}
		indexed, scan := nsPerOp["indexed"], nsPerOp["scan"]
		if indexed == 0 || scan == 0 {
			return
		}
		rows = append(rows, map[string]any{
			"shards":            l.shards,
			"indexed_ns_per_op": indexed,
			"scan_ns_per_op":    scan,
			"speedup":           float64(scan) / float64(indexed),
		})
	}
	mergeBenchServe(b, "store_lookup", map[string]any{
		"facts":    flat.Len(),
		"entities": flat.EntityCount(),
		"queries":  len(qs),
		"rows":     rows,
	})
}

// BenchmarkServeQuery measures the HTTP API end to end — routing,
// middleware, store lookup and JSON encoding — against an in-process
// listener.
func BenchmarkServeQuery(b *testing.B) {
	flat := serveStore()
	rows := make([]map[string]any, 0, 2)
	for _, l := range []struct {
		shards int
		st     store.Querier
	}{
		{1, flat},
		{store.DefaultShards, store.NewSharded(flat.Facts(), store.DefaultShards)},
	} {
		srv := serve.New(l.st, obs.NewRegistry(), serve.DefaultConfig())
		ts := httptest.NewServer(srv.Handler())

		facts := flat.Facts()
		urls := []string{
			fmt.Sprintf("%s/v1/entity/%s", ts.URL, strings.ReplaceAll(facts[0].Entity, " ", "_")),
			fmt.Sprintf("%s/v1/query?class=%s&limit=50", ts.URL, url.QueryEscape(flat.Classes()[0])),
			fmt.Sprintf("%s/healthz", ts.URL),
		}
		nsPerOp := map[string]int64{}
		for _, u := range urls {
			u := u
			b.Run(fmt.Sprintf("shards=%d%s", l.shards, u[len(ts.URL):]), func(b *testing.B) {
				start := time.Now()
				for i := 0; i < b.N; i++ {
					resp, err := http.Get(u)
					if err != nil {
						b.Fatal(err)
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						b.Fatalf("%s: status %d", u, resp.StatusCode)
					}
				}
				nsPerOp[u[len(ts.URL):]] = time.Since(start).Nanoseconds() / int64(b.N)
			})
		}
		ts.Close()
		rows = append(rows, map[string]any{
			"shards":           l.shards,
			"routes_ns_per_op": nsPerOp,
		})
	}
	mergeBenchServe(b, "serve_query", map[string]any{"rows": rows})
}
